package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"

	"caligo/internal/testutil"
)

// withLogging scopes the logging kill switch and resets the flight
// recorder so tests don't observe each other's records.
func withLogging(t *testing.T, on bool) {
	t.Helper()
	prev := SetLogEnabled(on)
	SetFlightRecorderCapacity(0) // reset to default, clears contents
	SetLogOutput(nil, LogJSON)
	t.Cleanup(func() {
		SetLogEnabled(prev)
		SetLogOutput(nil, LogJSON)
		SetFlightRecorderCapacity(0)
	})
}

func TestLoggingKillSwitch(t *testing.T) {
	withLogging(t, false)
	log := Logger("test")
	log.Info("dropped", "k", "v")
	if retained, total := FlightRecorderLen(); retained != 0 || total != 0 {
		t.Errorf("disabled logging recorded %d/%d records", retained, total)
	}
	EnableLogging()
	log.Info("kept", "k", "v")
	if retained, _ := FlightRecorderLen(); retained != 1 {
		t.Errorf("enabled logging retained %d records, want 1", retained)
	}
}

// TestLoggingDisabledAllocs: a dropped record costs no allocations — the
// kill switch is checked in Enabled before slog builds the record.
func TestLoggingDisabledAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	withLogging(t, false)
	log := Logger("test")
	allocs := testing.AllocsPerRun(100, func() {
		log.Info("dropped", "key", 42)
	})
	if allocs != 0 {
		t.Errorf("disabled log call allocates %.1f times, want 0", allocs)
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	withLogging(t, true)
	SetFlightRecorderCapacity(4)
	log := Logger("ring")
	for i := 0; i < 10; i++ {
		log.Info("event", "seq", i)
	}
	retained, total := FlightRecorderLen()
	if retained != 4 || total != 10 {
		t.Fatalf("retained/total = %d/%d, want 4/10", retained, total)
	}
	var buf bytes.Buffer
	if err := WriteFlightRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("dump has %d lines, want 4:\n%s", len(lines), buf.String())
	}
	// oldest-first: the retained window is seqs 6..9
	for i, line := range lines {
		var rec struct {
			Msg       string  `json:"msg"`
			Seq       float64 `json:"seq"`
			Subsystem string  `json:"subsystem"`
			Level     string  `json:"level"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if rec.Seq != float64(6+i) {
			t.Errorf("line %d seq = %v, want %d", i, rec.Seq, 6+i)
		}
		if rec.Subsystem != "ring" {
			t.Errorf("line %d subsystem = %q", i, rec.Subsystem)
		}
	}
}

func TestLogSinkFormats(t *testing.T) {
	withLogging(t, true)
	var sink bytes.Buffer
	SetLogOutput(&sink, LogJSON)
	Logger("fmt").Warn("json sink", "n", 1)
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(sink.Bytes()), &rec); err != nil {
		t.Fatalf("JSON sink line invalid: %v\n%s", err, sink.String())
	}
	if rec["subsystem"] != "fmt" || rec["msg"] != "json sink" {
		t.Errorf("JSON sink record %v", rec)
	}

	sink.Reset()
	SetLogOutput(&sink, LogText)
	Logger("fmt").Error("text sink", "n", 2)
	out := sink.String()
	if !strings.Contains(out, "msg=\"text sink\"") || !strings.Contains(out, "subsystem=fmt") {
		t.Errorf("text sink rendering: %s", out)
	}
	// flight recorder captured both, as JSON, regardless of sink format
	var fr bytes.Buffer
	if err := WriteFlightRecorder(&fr); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(fr.String(), "\n"); got != 2 {
		t.Errorf("flight recorder has %d records, want 2:\n%s", got, fr.String())
	}
}

func TestLogLevelPreservesSink(t *testing.T) {
	withLogging(t, true)
	var sink bytes.Buffer
	SetLogOutput(&sink, LogJSON)
	SetLogLevel(slog.LevelWarn)
	defer SetLogLevel(slog.LevelInfo)
	log := Logger("lvl")
	log.Info("filtered")
	log.Warn("passed")
	if strings.Contains(sink.String(), "filtered") {
		t.Error("info record passed a Warn level")
	}
	if !strings.Contains(sink.String(), "passed") {
		t.Error("warn record filtered; sink lost on SetLogLevel?")
	}
}

func TestLoggerGroupsAndAttrs(t *testing.T) {
	withLogging(t, true)
	var sink bytes.Buffer
	SetLogOutput(&sink, LogJSON)
	log := Logger("grp").With("qid", 7).WithGroup("phase").With("name", "merge")
	log.Info("timing", "ns", 123)
	var rec map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(sink.Bytes()), &rec); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sink.String())
	}
	if rec["qid"] != float64(7) {
		t.Errorf("qid = %v", rec["qid"])
	}
	// the grouped attrs land under the group, however slog nests them
	if _, ok := rec["phase"]; !ok {
		t.Errorf("no phase group in %v", rec)
	}
}

// TestLogConcurrentWriteWhileDump hammers logging and flight-recorder
// dumps concurrently (run under -race in CI).
func TestLogConcurrentWriteWhileDump(t *testing.T) {
	withLogging(t, true)
	log := Logger("conc")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				log.Info("event", "worker", w, "i", i)
			}
		}(w)
	}
	for d := 0; d < 2; d++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := WriteFlightRecorder(&buf); err != nil {
					t.Error(err)
					return
				}
				for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
					if line == "" {
						continue
					}
					if !json.Valid([]byte(line)) {
						t.Errorf("torn flight-recorder line: %q", line)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
