package obs

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"caligo/internal/telemetry"
)

func TestParseMetricsEscapedLabels(t *testing.T) {
	in := `# TYPE app_info gauge
app_info{path="C:\\tmp\\x",msg="say \"hi\"",multi="a\nb",csv="a,b,c"} 1
`
	m, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := m.Families["app_info"]
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("families = %+v", m.Families)
	}
	got := f.Samples[0].Labels
	want := map[string]string{
		"path":  `C:\tmp\x`,
		"msg":   `say "hi"`,
		"multi": "a\nb",
		"csv":   "a,b,c",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("label %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestParseMetricsExponentFloats(t *testing.T) {
	in := `# TYPE big gauge
big 1.5e+09
# TYPE small gauge
small 2E-3
# TYPE neg gauge
neg -3.25e2
`
	m, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{"big": 1.5e9, "small": 2e-3, "neg": -325}
	for name, want := range checks {
		v, ok := m.Families[name].Value()
		if !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
}

// TestParseMetricsHistogramMissingSum checks a histogram family whose
// exposition omits _sum (allowed for some producers): buckets and count
// still work, HistSum reports absence instead of zero.
func TestParseMetricsHistogramMissingSum(t *testing.T) {
	in := `# TYPE lat histogram
lat_bucket{le="100"} 3
lat_bucket{le="+Inf"} 5
lat_count 5
`
	m, err := ParseMetrics(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	f := m.Families["lat"]
	if _, ok := f.HistSum(); ok {
		t.Error("HistSum reported a value for a family without _sum")
	}
	if n, ok := f.HistCount(); !ok || n != 5 {
		t.Errorf("HistCount = %v (ok=%v), want 5", n, ok)
	}
	if q, ok := f.HistQuantile(0.5); !ok || q <= 0 || q > 100 {
		t.Errorf("median = %v (ok=%v), want within (0,100]", q, ok)
	}
}

// TestParseMetricsRandomRoundTrip is a property test: a randomized
// registry scraped through the Exporter and re-parsed must reproduce
// every counter and gauge value exactly and every histogram's count,
// sum, and cumulative bucket structure.
func TestParseMetricsRandomRoundTrip(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		reg := telemetry.NewRegistry()
		type expect struct {
			kind string
			val  float64
			snap telemetry.HistogramSnapshot
		}
		want := map[string]expect{}
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			name := "rt.metric." + string(rune('a'+i))
			switch rng.Intn(3) {
			case 0:
				v := uint64(rng.Int63n(1 << 40))
				reg.Counter(name).Add(v)
				want[SanitizeName(name)] = expect{kind: "counter", val: float64(v)}
			case 1:
				v := rng.Int63n(1<<40) - (1 << 39)
				reg.Gauge(name).Set(v)
				want[SanitizeName(name)] = expect{kind: "gauge", val: float64(v)}
			default:
				h := reg.Histogram(name)
				obs := 1 + rng.Intn(200)
				for j := 0; j < obs; j++ {
					h.Observe(rng.Int63n(1<<30) - (1 << 10))
				}
				want[SanitizeName(name)] = expect{kind: "histogram", snap: h.Snapshot()}
			}
		}

		var buf bytes.Buffer
		if err := NewExporter(reg).Write(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := ParseMetrics(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if !m.EOF {
			t.Fatalf("trial %d: exposition missing # EOF", trial)
		}
		for name, exp := range want {
			f := m.Families[name]
			if f == nil {
				t.Fatalf("trial %d: scrape missing family %s", trial, name)
			}
			if f.Type != exp.kind {
				t.Errorf("trial %d: %s type = %s, want %s", trial, name, f.Type, exp.kind)
			}
			switch exp.kind {
			case "counter", "gauge":
				v, ok := f.Value()
				if !ok || v != exp.val {
					t.Errorf("trial %d: %s = %v (ok=%v), want %v", trial, name, v, ok, exp.val)
				}
			case "histogram":
				cnt, ok := f.HistCount()
				if !ok || cnt != float64(exp.snap.Count) {
					t.Errorf("trial %d: %s count = %v, want %d", trial, name, cnt, exp.snap.Count)
				}
				sum, ok := f.HistSum()
				if !ok || sum != float64(exp.snap.Sum) {
					t.Errorf("trial %d: %s sum = %v, want %d", trial, name, sum, exp.snap.Sum)
				}
				// buckets are cumulative and must end at count on +Inf
				var lastCum, lastUpper float64
				lastUpper = math.Inf(-1)
				var infCum float64
				infSeen := false
				for _, s := range f.Samples {
					if s.Name != name+"_bucket" {
						continue
					}
					u, err := parseValue(s.Labels["le"])
					if err != nil {
						t.Fatalf("trial %d: bad le %q", trial, s.Labels["le"])
					}
					if u <= lastUpper {
						t.Errorf("trial %d: %s buckets not ascending (%v after %v)", trial, name, u, lastUpper)
					}
					if s.Value < lastCum {
						t.Errorf("trial %d: %s buckets not cumulative", trial, name)
					}
					lastUpper, lastCum = u, s.Value
					if math.IsInf(u, 1) {
						infCum, infSeen = s.Value, true
					}
				}
				if !infSeen || infCum != float64(exp.snap.Count) {
					t.Errorf("trial %d: %s +Inf bucket = %v (seen=%v), want %d",
						trial, name, infCum, infSeen, exp.snap.Count)
				}
			}
		}
	}
}
