package obs

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"caligo/internal/telemetry"
)

// Background runtime sampler: feeds Go runtime health — heap size and
// object count, GC activity and pause latencies, goroutine count — into
// the telemetry registry as caligo.runtime.* gauges and a GC-pause
// histogram, so one /debug/metrics scrape carries engine metrics and
// process health side by side (the monitoring-oriented exposition the
// Circllhist paper argues for: everything is a mergeable histogram or a
// scalar on one scrape surface).

var (
	gHeapAlloc  = telemetry.NewGauge("caligo.runtime.heap.alloc.bytes")
	gHeapSys    = telemetry.NewGauge("caligo.runtime.heap.sys.bytes")
	gHeapObj    = telemetry.NewGauge("caligo.runtime.heap.objects")
	gNextGC     = telemetry.NewGauge("caligo.runtime.gc.next.bytes")
	gGCCount    = telemetry.NewGauge("caligo.runtime.gc.count")
	gGoroutines = telemetry.NewGauge("caligo.runtime.goroutines")
	hGCPause    = telemetry.NewHistogram("caligo.runtime.gc.pause.ns")
)

// DefaultSampleInterval is the runtime sampler's default period.
const DefaultSampleInterval = time.Second

// samplerRunning guards against stacked samplers: ServeDebug starts one
// per server, host applications may start their own — only the first is
// live, later starts return a no-op stop.
var samplerRunning atomic.Bool

// StartRuntimeSampler launches the background sampler at the given
// interval (<= 0 selects DefaultSampleInterval) and returns a stop
// function. Samples are only taken while telemetry is enabled — with the
// kill switch off the goroutine just ticks. If a sampler is already
// running, the returned stop is a no-op for it.
func StartRuntimeSampler(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if !samplerRunning.CompareAndSwap(false, true) {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		// prime the GC-pause cursor so a sampler started late doesn't
		// replay the process's whole pause history in one burst
		lastNumGC := sampleRuntime(0, false)
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if telemetry.Enabled() {
					lastNumGC = sampleRuntime(lastNumGC, true)
				}
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			samplerRunning.Store(false)
		})
	}
}

// sampleRuntime takes one sample and returns the GC cycle count. With
// observePauses it also feeds pauses of cycles newer than lastNumGC into
// the pause histogram — each completed cycle's pause is observed exactly
// once across the sampler's lifetime (PauseNs is a ring of the last 256
// pauses indexed by cycle number).
func sampleRuntime(lastNumGC uint32, observePauses bool) uint32 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gHeapAlloc.Set(int64(ms.HeapAlloc))
	gHeapSys.Set(int64(ms.HeapSys))
	gHeapObj.Set(int64(ms.HeapObjects))
	gNextGC.Set(int64(ms.NextGC))
	gGCCount.Set(int64(ms.NumGC))
	gGoroutines.Set(int64(runtime.NumGoroutine()))
	if observePauses {
		newPauses := ms.NumGC - lastNumGC
		if newPauses > uint32(len(ms.PauseNs)) {
			newPauses = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < newPauses; i++ {
			cycle := ms.NumGC - i
			hGCPause.Observe(int64(ms.PauseNs[(cycle+255)%256]))
		}
	}
	return ms.NumGC
}

// SampleRuntimeOnce refreshes the runtime gauges immediately (tools that
// want fresh values in a report without running the background sampler).
// It never observes GC pauses — that is the sampler's job, which tracks
// cycles so each pause counts exactly once.
func SampleRuntimeOnce() {
	if telemetry.Enabled() {
		sampleRuntime(0, false)
	}
}
