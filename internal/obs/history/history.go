// Package history turns the instantaneous telemetry registry into a
// queryable timeline: a background Recorder snapshots the registry every
// interval and writes each window as ordinary .cali records — counters as
// window deltas, gauges as samples, histograms as mergeable log-linear
// bin sets — stamped with time.window.start / time.window.dur / host.rank
// attributes, into a bounded on-disk retention ring (the internal/prof
// ring pattern). The full history is then CalQL-queryable:
//
//	SELECT time.window.start, metric.name, sum(metric.delta)
//	  GROUP BY time.window.start, metric.name        -- time series
//	AGGREGATE sum(metric.delta) GROUP BY host.rank   -- cross-rank skew
//
// On top of the per-rank timeline, cluster.go dogfoods the paper's own
// aggregation machinery on the telemetry itself: per-rank window records
// reduce through internal/rnet's tree into one cluster-wide core.DB
// (counters sum, histogram bins add, gauges keep min/max), published as
// the /debug/cluster view.
package history

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/obs"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). The recorder records
// the registry it observes, so these metrics appear in their own history.
var (
	telWindows   = telemetry.NewCounter("caligo.history.windows")
	telRecords   = telemetry.NewCounter("caligo.history.records")
	telBytes     = telemetry.NewCounter("caligo.history.bytes.written")
	telErrors    = telemetry.NewCounter("caligo.history.errors")
	telDropped   = telemetry.NewCounter("caligo.history.dropped")
	telFiles     = telemetry.NewGauge("caligo.history.files")
	telCaptureNS = telemetry.NewHistogram("caligo.history.capture.ns")
)

// enabled is the package kill switch: when off, a capture tick is exactly
// one atomic load (no snapshot, no diff, no I/O). It defaults to on —
// recording is already opt-in via Start.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// Enabled reports whether history capture is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled sets the capture kill switch and returns the previous state.
// A running Recorder keeps ticking but each tick returns after one atomic
// load while disabled.
func SetEnabled(on bool) (previous bool) { return enabled.Swap(on) }

// Attribute names of the history record schema. Window stamps and
// host.rank are the GROUP BY axes; the metric.* and bin.* attributes
// carry the per-window observations.
const (
	AttrWindowStart = "time.window.start" // int, window start, unix ns
	AttrWindowDur   = "time.window.dur"   // int, window length, ns
	AttrRank        = "host.rank"         // int, producing rank
	AttrMetricName  = "metric.name"       // string
	AttrMetricKind  = "metric.kind"       // string: counter|gauge|histogram
	AttrDelta       = "metric.delta"      // uint, counter increment this window
	AttrTotal       = "metric.total"      // uint, counter cumulative at window end
	AttrValue       = "metric.value"      // int, gauge sample at window end
	AttrCount       = "metric.count"      // uint, histogram observations this window
	AttrSum         = "metric.sum"        // int, histogram sum increment this window
	AttrBinUpper    = "bin.upper"         // float, histogram bin exclusive upper bound
	AttrBinCount    = "bin.count"         // uint, histogram bin increment this window
)

// Attribute properties follow the caliper metrics service conventions:
// every history attribute is an immediate value outside the context tree,
// and the measurement attributes are aggregation targets.
const (
	labelProps = attr.AsValue | attr.SkipEvents
	valueProps = attr.AsValue | attr.Aggregatable | attr.SkipEvents
)

// Schema holds the resolved history attributes of one registry, so window
// records can be built against any attr.Registry (the Recorder's private
// one, or a pquery rank's).
type Schema struct {
	reg         *attr.Registry
	windowStart attr.Attribute
	windowDur   attr.Attribute
	rank        attr.Attribute
	name        attr.Attribute
	kind        attr.Attribute
	delta       attr.Attribute
	total       attr.Attribute
	value       attr.Attribute
	count       attr.Attribute
	sum         attr.Attribute
	binUpper    attr.Attribute
	binCount    attr.Attribute
}

// NewSchema creates (idempotently) the history attributes in reg.
func NewSchema(reg *attr.Registry) (*Schema, error) {
	s := &Schema{reg: reg}
	for _, c := range []struct {
		dst   *attr.Attribute
		name  string
		typ   attr.Type
		props attr.Properties
	}{
		{&s.windowStart, AttrWindowStart, attr.Int, labelProps},
		{&s.windowDur, AttrWindowDur, attr.Int, labelProps},
		{&s.rank, AttrRank, attr.Int, labelProps},
		{&s.name, AttrMetricName, attr.String, labelProps},
		{&s.kind, AttrMetricKind, attr.String, labelProps},
		{&s.delta, AttrDelta, attr.Uint, valueProps},
		{&s.total, AttrTotal, attr.Uint, valueProps},
		{&s.value, AttrValue, attr.Int, valueProps},
		{&s.count, AttrCount, attr.Uint, valueProps},
		{&s.sum, AttrSum, attr.Int, valueProps},
		{&s.binUpper, AttrBinUpper, attr.Float, labelProps},
		{&s.binCount, AttrBinCount, attr.Uint, valueProps},
	} {
		a, err := reg.Create(c.name, c.typ, c.props)
		if err != nil {
			return nil, fmt.Errorf("history: %w", err)
		}
		*c.dst = a
	}
	return s, nil
}

// Registry returns the registry the schema's attributes live in.
func (s *Schema) Registry() *attr.Registry { return s.reg }

// stamp returns the common prefix entries of one window's records.
func (s *Schema) stamp(rank int, startNS, durNS int64, name string, kind telemetry.Kind) []attr.Entry {
	return []attr.Entry{
		{Attr: s.windowStart, Value: attr.IntV(startNS)},
		{Attr: s.windowDur, Value: attr.IntV(durNS)},
		{Attr: s.rank, Value: attr.IntV(int64(rank))},
		{Attr: s.name, Value: attr.StringV(name)},
		{Attr: s.kind, Value: attr.StringV(kind.String())},
	}
}

// AppendWindow appends the .cali records of one telemetry window to dst:
// the diff of two registry exports (both sorted by name then kind, as
// Registry.ExportInto returns them). prev may be nil for a one-shot
// window, in which case every cumulative value counts as this window's
// delta. Counters whose value went backwards (registry reset between
// snapshots) restart the delta from the current value. Metrics that did
// not change and are zero are skipped; touched metrics emit every window
// so time series have no gaps.
func (s *Schema) AppendWindow(dst []snapshot.FlatRecord, rank int, startNS, durNS int64, prev, cur []telemetry.Metric) []snapshot.FlatRecord {
	j := 0
	for i := range cur {
		c := &cur[i]
		// advance prev to the matching metric (both inputs are sorted)
		var p *telemetry.Metric
		for j < len(prev) && (prev[j].Name < c.Name || (prev[j].Name == c.Name && prev[j].Kind < c.Kind)) {
			j++
		}
		if j < len(prev) && prev[j].Name == c.Name && prev[j].Kind == c.Kind {
			p = &prev[j]
		}
		switch c.Kind {
		case telemetry.KindCounter:
			var base uint64
			if p != nil {
				base = p.Counter
			}
			delta := c.Counter - base
			if c.Counter < base { // reset between snapshots
				delta = c.Counter
			}
			if c.Counter == 0 && delta == 0 {
				continue
			}
			rec := append(s.stamp(rank, startNS, durNS, c.Name, c.Kind),
				attr.Entry{Attr: s.delta, Value: attr.UintV(delta)},
				attr.Entry{Attr: s.total, Value: attr.UintV(c.Counter)})
			dst = append(dst, rec)
		case telemetry.KindGauge:
			if c.Gauge == 0 && (p == nil || p.Gauge == 0) {
				continue
			}
			rec := append(s.stamp(rank, startNS, durNS, c.Name, c.Kind),
				attr.Entry{Attr: s.value, Value: attr.IntV(c.Gauge)})
			dst = append(dst, rec)
		case telemetry.KindHistogram:
			d := c.Hist
			if p != nil {
				d = c.Hist.Sub(p.Hist)
			}
			if d.Count == 0 {
				continue
			}
			rec := append(s.stamp(rank, startNS, durNS, c.Name, c.Kind),
				attr.Entry{Attr: s.count, Value: attr.UintV(d.Count)},
				attr.Entry{Attr: s.sum, Value: attr.IntV(d.Sum)})
			dst = append(dst, rec)
			d.EachBucket(func(upper float64, n uint64) {
				bin := append(s.stamp(rank, startNS, durNS, c.Name, c.Kind),
					attr.Entry{Attr: s.binUpper, Value: attr.FloatV(upper)},
					attr.Entry{Attr: s.binCount, Value: attr.UintV(n)})
				dst = append(dst, bin)
			})
		}
	}
	return dst
}

// WindowMetric is one metric's contribution to a window summary (the
// /debug/history JSON shape). Exactly the fields of the metric's kind are
// set.
type WindowMetric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Delta uint64 `json:"delta,omitempty"` // counter increment
	Total uint64 `json:"total,omitempty"` // counter cumulative
	Value int64  `json:"value,omitempty"` // gauge sample
	Count uint64 `json:"count,omitempty"` // histogram observations
	Sum   int64  `json:"sum,omitempty"`   // histogram sum increment
}

// Window is one captured telemetry window.
type Window struct {
	Start   int64          `json:"start_unix_ns"`
	Dur     int64          `json:"dur_ns"`
	Rank    int            `json:"rank"`
	File    string         `json:"file,omitempty"`
	Metrics []WindowMetric `json:"metrics"`
}

// summarize builds the JSON window summary alongside the .cali records.
func summarize(rank int, startNS, durNS int64, prev, cur []telemetry.Metric) Window {
	w := Window{Start: startNS, Dur: durNS, Rank: rank}
	j := 0
	for i := range cur {
		c := &cur[i]
		var p *telemetry.Metric
		for j < len(prev) && (prev[j].Name < c.Name || (prev[j].Name == c.Name && prev[j].Kind < c.Kind)) {
			j++
		}
		if j < len(prev) && prev[j].Name == c.Name && prev[j].Kind == c.Kind {
			p = &prev[j]
		}
		switch c.Kind {
		case telemetry.KindCounter:
			var base uint64
			if p != nil {
				base = p.Counter
			}
			delta := c.Counter - base
			if c.Counter < base {
				delta = c.Counter
			}
			if c.Counter == 0 && delta == 0 {
				continue
			}
			w.Metrics = append(w.Metrics, WindowMetric{Name: c.Name, Kind: c.Kind.String(), Delta: delta, Total: c.Counter})
		case telemetry.KindGauge:
			if c.Gauge == 0 && (p == nil || p.Gauge == 0) {
				continue
			}
			w.Metrics = append(w.Metrics, WindowMetric{Name: c.Name, Kind: c.Kind.String(), Value: c.Gauge})
		case telemetry.KindHistogram:
			d := c.Hist
			if p != nil {
				d = c.Hist.Sub(p.Hist)
			}
			if d.Count == 0 {
				continue
			}
			w.Metrics = append(w.Metrics, WindowMetric{Name: c.Name, Kind: c.Kind.String(), Count: d.Count, Sum: d.Sum})
		}
	}
	return w
}

// Options configures a Recorder.
type Options struct {
	// Dir receives the .cali window files. Required.
	Dir string
	// Interval is the capture cadence (default 10s).
	Interval time.Duration
	// MaxFiles bounds the on-disk retention ring: when more window files
	// exist, the oldest are removed (default 64, minimum 2). The in-memory
	// window summaries served by /debug/history honor the same bound.
	MaxFiles int
	// Prefix names the files: <prefix>-<seq>.cali (default "history").
	Prefix string
	// Rank stamps every record's host.rank attribute (default 0).
	Rank int
	// Registry is the telemetry registry to observe (default
	// telemetry.Default()).
	Registry *telemetry.Registry
	// MaxPending bounds the window records buffered for the cluster
	// reduction (rnet.SyncTelemetry); the oldest are dropped — and counted
	// in caligo.history.dropped — when no epoch drains them in time
	// (default 4096 records).
	MaxPending int
}

func (o *Options) fill() error {
	if o.Dir == "" {
		return fmt.Errorf("history: Options.Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Second
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 64
	}
	if o.MaxFiles < 2 {
		o.MaxFiles = 2
	}
	if o.Prefix == "" {
		o.Prefix = "history"
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 4096
	}
	return nil
}

// Recorder is the background telemetry-history scheduler: every Interval
// it diffs the registry against the previous snapshot, writes the window
// as one .cali ring file, keeps an in-memory summary for /debug/history,
// and buffers the records for the next cluster reduction epoch.
type Recorder struct {
	opts   Options
	log    *slog.Logger
	schema *Schema

	mu      sync.Mutex
	seq     int
	files   []string // retained ring files, oldest first
	windows []Window // in-memory summaries, oldest first, same bound
	prev    []telemetry.Metric
	cur     []telemetry.Metric
	lastAt  time.Time // wall time of the previous snapshot
	buf     bytes.Buffer
	pending []snapshot.FlatRecord // records awaiting a cluster epoch
	done    chan struct{}
	wg      sync.WaitGroup
}

// Start begins continuous history capture. The baseline registry snapshot
// is taken immediately; the first window lands after one Interval (or at
// Stop, whichever comes first — short runs still produce one window).
func Start(opts Options) (*Recorder, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	schema, err := NewSchema(attr.NewRegistry())
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		opts:   opts,
		log:    obs.Logger("history"),
		schema: schema,
		done:   make(chan struct{}),
	}
	r.adoptExisting()
	r.mu.Lock()
	r.prev = opts.Registry.ExportInto(r.prev)
	r.lastAt = time.Now()
	r.mu.Unlock()
	r.wg.Add(1)
	go r.loop()
	return r, nil
}

// adoptExisting picks up leftover ring files from a previous run so
// retention keeps working across restarts.
func (r *Recorder) adoptExisting() {
	matches, err := filepath.Glob(filepath.Join(r.opts.Dir, r.opts.Prefix+"-*.cali"))
	if err != nil || len(matches) == 0 {
		return
	}
	sort.Strings(matches)
	r.mu.Lock()
	r.files = matches
	telFiles.Set(int64(len(r.files)))
	r.mu.Unlock()
}

// Stop halts the scheduler, waits for an in-flight capture, and captures
// one final tail window covering the time since the last tick. Retained
// files stay on disk.
func (r *Recorder) Stop() {
	r.mu.Lock()
	select {
	case <-r.done:
		r.mu.Unlock()
		return
	default:
		close(r.done)
	}
	r.mu.Unlock()
	r.wg.Wait()
	if _, err := r.CaptureNow(); err != nil {
		r.log.Warn("final window capture failed", "err", err)
	}
}

func (r *Recorder) loop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-ticker.C:
			if _, err := r.CaptureNow(); err != nil {
				r.log.Warn("window capture failed", "err", err)
			}
		}
	}
}

// CaptureNow synchronously captures one window (the time since the last
// snapshot) into the ring and returns the written file path. When the
// kill switch is off it returns ("", nil) after one atomic load. A window
// in which nothing changed writes an empty (globals-only) file so the
// timeline has no gaps.
func (r *Recorder) CaptureNow() (string, error) {
	if !enabled.Load() {
		return "", nil
	}
	start := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()

	startNS := r.lastAt.UnixNano()
	durNS := start.Sub(r.lastAt).Nanoseconds()
	r.cur = r.opts.Registry.ExportInto(r.cur)

	recs := r.schema.AppendWindow(nil, r.opts.Rank, startNS, durNS, r.prev, r.cur)
	win := summarize(r.opts.Rank, startNS, durNS, r.prev, r.cur)

	// encode the window as a .cali stream
	r.buf.Reset()
	w := calformat.NewWriter(&r.buf, r.schema.reg, contexttree.New())
	for _, rec := range recs {
		if err := w.WriteFlat(rec); err != nil {
			telErrors.Inc()
			return "", fmt.Errorf("history: encode window: %w", err)
		}
	}
	if err := w.WriteGlobals([]attr.Entry{
		{Attr: r.schema.windowStart, Value: attr.IntV(startNS)},
		{Attr: r.schema.windowDur, Value: attr.IntV(durNS)},
		{Attr: r.schema.rank, Value: attr.IntV(int64(r.opts.Rank))},
	}); err != nil {
		telErrors.Inc()
		return "", fmt.Errorf("history: encode globals: %w", err)
	}
	if err := w.Flush(); err != nil {
		telErrors.Inc()
		return "", fmt.Errorf("history: encode window: %w", err)
	}

	name := fmt.Sprintf("%s-%06d.cali", r.opts.Prefix, r.seq)
	r.seq++
	path := filepath.Join(r.opts.Dir, name)
	if err := os.WriteFile(path, r.buf.Bytes(), 0o644); err != nil {
		telErrors.Inc()
		return "", fmt.Errorf("history: write %s: %w", path, err)
	}
	win.File = path

	// rotate state: the captured snapshot becomes the next baseline
	r.prev, r.cur = r.cur, r.prev
	r.lastAt = start

	// retention: files and in-memory summaries share the bound
	r.files = append(r.files, path)
	r.windows = append(r.windows, win)
	if n := len(r.files) - r.opts.MaxFiles; n > 0 {
		evict := append([]string(nil), r.files[:n]...)
		r.files = append(r.files[:0], r.files[n:]...)
		for _, old := range evict {
			if err := os.Remove(old); err != nil && !os.IsNotExist(err) {
				r.log.Warn("retention remove failed", "file", old, "err", err)
			}
		}
	}
	if n := len(r.windows) - r.opts.MaxFiles; n > 0 {
		r.windows = append(r.windows[:0], r.windows[n:]...)
	}

	// buffer records for the next cluster epoch, bounded
	r.pending = append(r.pending, recs...)
	if n := len(r.pending) - r.opts.MaxPending; n > 0 {
		r.pending = append(r.pending[:0], r.pending[n:]...)
		telDropped.Add(uint64(n))
	}

	telWindows.Inc()
	telRecords.Add(uint64(len(recs)))
	telBytes.Add(uint64(r.buf.Len()))
	telFiles.Set(int64(len(r.files)))
	telCaptureNS.Observe(time.Since(start).Nanoseconds())
	return path, nil
}

// Registry returns the private attribute registry the recorder's window
// records resolve against — the registry to build the cluster-epoch
// core.DB over.
func (r *Recorder) Registry() *attr.Registry { return r.schema.reg }

// Schema returns the recorder's resolved history schema.
func (r *Recorder) Schema() *Schema { return r.schema }

// Options returns the recorder's effective (defaulted) options.
func (r *Recorder) Options() Options { return r.opts }

// Files returns the retained ring files, oldest first.
func (r *Recorder) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.files...)
}

// Windows returns copies of the retained window summaries, oldest first.
func (r *Recorder) Windows() []Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Window, len(r.windows))
	copy(out, r.windows)
	return out
}

// TakePending removes and returns the window records buffered since the
// last cluster epoch (resolving against Registry()). Called by
// rnet.SyncTelemetry on the rank's goroutine.
func (r *Recorder) TakePending() []snapshot.FlatRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.pending
	r.pending = nil
	return out
}
