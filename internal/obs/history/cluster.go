package history

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/snapshot"
)

// ClusterScheme returns the aggregation scheme the telemetry-reduction
// epoch runs over: per-rank window records keyed by metric identity and
// rank, reduced with the same core.DB merge kernel application data uses.
// Counters sum their window deltas, histogram bins add bin-wise, gauges
// keep min and max; max#time.window.start dates each group's freshest
// window.
func ClusterScheme() *core.Scheme {
	return core.MustScheme(
		[]string{AttrMetricName, AttrMetricKind, AttrRank, AttrBinUpper},
		[]core.OpSpec{
			{Kind: core.OpCount},
			{Kind: core.OpSum, Target: AttrDelta},
			{Kind: core.OpMax, Target: AttrTotal},
			{Kind: core.OpMin, Target: AttrValue},
			{Kind: core.OpMax, Target: AttrValue},
			{Kind: core.OpSum, Target: AttrCount},
			{Kind: core.OpSum, Target: AttrSum},
			{Kind: core.OpSum, Target: AttrBinCount},
			{Kind: core.OpMax, Target: AttrWindowStart},
		})
}

// CombineEncoded merges two encoded cluster-scheme DB states — the
// mpi.Combine function of the telemetry-reduction tree.
func CombineEncoded(a, b []byte) ([]byte, error) {
	db, err := core.NewDB(ClusterScheme(), attr.NewRegistry())
	if err != nil {
		return nil, err
	}
	if err := db.MergeEncodedState(a); err != nil {
		return nil, err
	}
	if err := db.MergeEncodedState(b); err != nil {
		return nil, err
	}
	return db.EncodeState(), nil
}

// RankValue is one rank's contribution to a cluster metric.
type RankValue struct {
	Rank  int    `json:"rank"`
	Delta uint64 `json:"delta,omitempty"` // counter: summed window deltas
	Total uint64 `json:"total,omitempty"` // counter: latest cumulative value
	Min   int64  `json:"min,omitempty"`   // gauge: min over windows
	Max   int64  `json:"max,omitempty"`   // gauge: max over windows
	Last  int64  `json:"last,omitempty"`  // gauge: value in the latest epoch
	Count uint64 `json:"count,omitempty"` // histogram: summed observation counts
	Sum   int64  `json:"sum,omitempty"`   // histogram: summed value increments
}

// ClusterBin is one merged histogram bin (counts summed across ranks).
type ClusterBin struct {
	Upper float64 `json:"upper"`
	Count uint64  `json:"count"`
}

// ClusterMetric is one metric's cluster-wide aggregate.
type ClusterMetric struct {
	Name  string      `json:"name"`
	Kind  string      `json:"kind"`
	Delta uint64      `json:"delta,omitempty"` // counter: sum across ranks
	Min   int64       `json:"min,omitempty"`   // gauge: min across ranks
	Max   int64       `json:"max,omitempty"`   // gauge: max across ranks
	Count uint64      `json:"count,omitempty"` // histogram: total observations
	Sum   int64       `json:"sum,omitempty"`   // histogram: total value
	Bins  []ClusterBin `json:"bins,omitempty"` // histogram: bin-wise merge
	Ranks []RankValue  `json:"ranks,omitempty"`
}

// Quantile estimates the q-quantile of a merged histogram metric from its
// cluster bins by cumulative linear interpolation — the same estimator
// obs.Family.HistQuantile applies to a /debug/metrics scrape, so the
// cluster view and a hand-merged union of per-rank scrapes agree.
func (m *ClusterMetric) Quantile(q float64) (float64, bool) {
	if len(m.Bins) == 0 {
		return 0, false
	}
	var total float64
	for _, b := range m.Bins {
		total += float64(b.Count)
	}
	if total == 0 {
		return 0, true
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	cum, prevUpper := 0.0, 0.0
	for i, b := range m.Bins {
		prevCum := cum
		cum += float64(b.Count)
		if cum >= rank {
			if math.IsInf(b.Upper, 1) {
				return prevUpper, true
			}
			if i == 0 || cum == prevCum {
				return b.Upper, true
			}
			frac := (rank - prevCum) / (cum - prevCum)
			return prevUpper + frac*(b.Upper-prevUpper), true
		}
		prevUpper = b.Upper
	}
	return prevUpper, true
}

// ClusterView is the cluster-wide observability aggregate the root
// publishes after each telemetry-reduction epoch — the /debug/cluster
// body.
type ClusterView struct {
	UpdatedUnixNS int64           `json:"updated_unix_ns"`
	Epochs        uint64          `json:"epochs"`
	Ranks         int             `json:"ranks"`
	SlowestRank   int             `json:"slowest_rank"` // -1 when unknown
	SlowestNS     int64           `json:"slowest_ns,omitempty"`
	Metrics       []ClusterMetric `json:"metrics"`
}

// slownessMetrics name the per-rank gauges consulted (in order) to pick
// the slowest rank: reduction-epoch sync lag first, then the parallel
// query's local phase time.
var slownessMetrics = []string{
	"caligo.rnet.sync.lag.ns",
	"caligo.pquery.local.ns",
}

// BuildClusterView renders the root's cumulative telemetry database as a
// ClusterView. epoch, when non-nil, is the current epoch's merged delta
// alone; per-rank gauge Last values come from it (a gauge's freshest
// sample is in the newest windows). Pass epoch == global on the first
// epoch.
func BuildClusterView(global, epoch *core.DB, epochs uint64, nowNS int64) (*ClusterView, error) {
	rows, err := global.FlushRecords()
	if err != nil {
		return nil, err
	}
	view := &ClusterView{UpdatedUnixNS: nowNS, Epochs: epochs, SlowestRank: -1}

	type key struct {
		name, kind string
	}
	metrics := map[key]*ClusterMetric{}
	var order []key
	ranks := map[int]bool{}
	lastByRank := map[key]map[int]int64{}

	get := func(k key) *ClusterMetric {
		m := metrics[k]
		if m == nil {
			m = &ClusterMetric{Name: k.name, Kind: k.kind}
			metrics[k] = m
			order = append(order, k)
		}
		return m
	}

	if epoch != nil && epoch != global {
		erows, err := epoch.FlushRecords()
		if err != nil {
			return nil, err
		}
		for _, row := range erows {
			k, rank, isBin, ok := rowIdentity(row)
			if !ok || isBin || k.kind != "gauge" {
				continue
			}
			if lastByRank[k] == nil {
				lastByRank[k] = map[int]int64{}
			}
			if v, ok := row.GetByName("max#" + AttrValue); ok {
				lastByRank[k][rank] = v.AsInt()
			}
		}
	}

	for _, row := range rows {
		k, rank, isBin, ok := rowIdentity(row)
		if !ok {
			continue
		}
		ranks[rank] = true
		m := get(k)
		if isBin {
			upper, _ := row.GetByName(AttrBinUpper)
			var n uint64
			if v, ok := row.GetByName("sum#" + AttrBinCount); ok {
				n = v.AsUint()
			}
			m.Bins = append(m.Bins, ClusterBin{Upper: upper.AsFloat(), Count: n})
			continue
		}
		rv := RankValue{Rank: rank}
		switch k.kind {
		case "counter":
			if v, ok := row.GetByName("sum#" + AttrDelta); ok {
				rv.Delta = v.AsUint()
				m.Delta += rv.Delta
			}
			if v, ok := row.GetByName("max#" + AttrTotal); ok {
				rv.Total = v.AsUint()
			}
		case "gauge":
			if v, ok := row.GetByName("min#" + AttrValue); ok {
				rv.Min = v.AsInt()
			}
			if v, ok := row.GetByName("max#" + AttrValue); ok {
				rv.Max = v.AsInt()
				rv.Last = rv.Max
			}
			if last, ok := lastByRank[k][rank]; ok {
				rv.Last = last
			}
			if len(m.Ranks) == 0 || rv.Min < m.Min {
				m.Min = rv.Min
			}
			if len(m.Ranks) == 0 || rv.Max > m.Max {
				m.Max = rv.Max
			}
		case "histogram":
			if v, ok := row.GetByName("sum#" + AttrCount); ok {
				rv.Count = v.AsUint()
				m.Count += rv.Count
			}
			if v, ok := row.GetByName("sum#" + AttrSum); ok {
				rv.Sum = v.AsInt()
				m.Sum += rv.Sum
			}
		}
		m.Ranks = append(m.Ranks, rv)
	}

	// merge duplicate bin rows (same upper across ranks) and sort
	for _, k := range order {
		m := metrics[k]
		if len(m.Bins) > 1 {
			sort.Slice(m.Bins, func(i, j int) bool { return m.Bins[i].Upper < m.Bins[j].Upper })
			out := m.Bins[:1]
			for _, b := range m.Bins[1:] {
				if last := &out[len(out)-1]; last.Upper == b.Upper {
					last.Count += b.Count
				} else {
					out = append(out, b)
				}
			}
			m.Bins = out
		}
		sort.Slice(m.Ranks, func(i, j int) bool { return m.Ranks[i].Rank < m.Ranks[j].Rank })
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].kind < order[j].kind
	})
	for _, k := range order {
		view.Metrics = append(view.Metrics, *metrics[k])
	}
	view.Ranks = len(ranks)

	// slowest rank: largest per-rank value of the first slowness gauge
	// present in the view
	for _, name := range slownessMetrics {
		m := metrics[key{name: name, kind: "gauge"}]
		if m == nil {
			continue
		}
		for _, rv := range m.Ranks {
			if view.SlowestRank < 0 || rv.Max > view.SlowestNS {
				view.SlowestRank, view.SlowestNS = rv.Rank, rv.Max
			}
		}
		break
	}
	return view, nil
}

// rowIdentity extracts a flushed cluster-scheme row's metric identity.
// isBin reports a histogram bin row (bin.upper present).
func rowIdentity(row snapshot.FlatRecord) (k struct{ name, kind string }, rank int, isBin bool, ok bool) {
	nameV, okN := row.GetByName(AttrMetricName)
	kindV, okK := row.GetByName(AttrMetricKind)
	rankV, okR := row.GetByName(AttrRank)
	if !okN || !okK || !okR {
		return k, 0, false, false
	}
	k.name, k.kind = nameV.String(), kindV.String()
	rank = int(rankV.AsInt())
	_, isBin = row.GetByName(AttrBinUpper)
	return k, rank, isBin, true
}

// The process-wide published cluster view (the root of the reduction
// publishes; /debug/cluster serves).
var (
	clusterMu   sync.RWMutex
	clusterView *ClusterView
)

// PublishCluster installs v as the process's current cluster view.
func PublishCluster(v *ClusterView) {
	clusterMu.Lock()
	clusterView = v
	clusterMu.Unlock()
}

// LatestCluster returns the most recently published cluster view, or nil.
func LatestCluster() *ClusterView {
	clusterMu.RLock()
	defer clusterMu.RUnlock()
	return clusterView
}

// WriteClusterJSON writes the published cluster view as JSON (an empty
// view when no epoch has published yet) — the /debug/cluster body.
func WriteClusterJSON(w io.Writer) error {
	v := LatestCluster()
	if v == nil {
		v = &ClusterView{SlowestRank: -1, Metrics: []ClusterMetric{}}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// WindowsDoc is the /debug/history JSON document.
type WindowsDoc struct {
	Count   int      `json:"count"`
	Windows []Window `json:"windows"`
}

// FilterWindows applies the /debug/history query filters: lastN > 0 keeps
// only the most recent N windows, rank >= 0 keeps only windows stamped
// with that rank.
func FilterWindows(windows []Window, lastN, rank int) []Window {
	out := windows
	if rank >= 0 {
		out = nil
		for _, w := range windows {
			if w.Rank == rank {
				out = append(out, w)
			}
		}
	}
	if lastN > 0 && len(out) > lastN {
		out = out[len(out)-lastN:]
	}
	return out
}

// WriteWindowsJSON writes windows as the /debug/history JSON document.
func WriteWindowsJSON(w io.Writer, windows []Window) error {
	if windows == nil {
		windows = []Window{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(WindowsDoc{Count: len(windows), Windows: windows})
}
