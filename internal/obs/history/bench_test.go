package history_test

import (
	"testing"
	"time"

	. "caligo/internal/obs/history"
	"caligo/internal/telemetry"
)

// benchRegistry builds a registry with a representative metric mix: a
// few counters and gauges plus two live histograms.
func benchRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("bench.requests").Add(1000)
	reg.Counter("bench.bytes").Add(1 << 20)
	reg.Counter("bench.errors").Add(3)
	reg.Gauge("bench.active").Set(17)
	reg.Gauge("bench.depth").Set(-2)
	h := reg.Histogram("bench.lat.ns")
	h2 := reg.Histogram("bench.size.bytes")
	for i := int64(1); i <= 64; i++ {
		h.Observe(i * 1000)
		h2.Observe(i * i)
	}
	return reg
}

// BenchmarkHistoryCapture measures one full window capture: registry
// export, diff, .cali encode, ring-file write, retention. This is the
// recorder's per-interval steady-state cost (the number recorded in the
// caligo.history.capture.ns histogram).
func BenchmarkHistoryCapture(b *testing.B) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	reg := benchRegistry()
	rec, err := Start(Options{Dir: b.TempDir(), Interval: time.Hour, MaxFiles: 4, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Stop()
	c := reg.Counter("bench.requests")
	h := reg.Histogram("bench.lat.ns")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(int64(i))
		if _, err := rec.CaptureNow(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistoryCaptureDisabled measures the kill-switch path: one
// atomic load, zero allocations.
func BenchmarkHistoryCaptureDisabled(b *testing.B) {
	prevTel := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prevTel)
	rec, err := Start(Options{Dir: b.TempDir(), Interval: time.Hour, Registry: benchRegistry()})
	if err != nil {
		b.Fatal(err)
	}
	defer rec.Stop()
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.CaptureNow(); err != nil {
			b.Fatal(err)
		}
	}
}
