package history_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"caligo/calql"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	. "caligo/internal/obs/history"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

func enableTelemetry(t *testing.T) {
	t.Helper()
	prev := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
}

// startRecorder starts a recorder over a private registry with a huge
// interval, so tests drive windows deterministically via CaptureNow.
func startRecorder(t *testing.T, reg *telemetry.Registry, opts Options) *Recorder {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	opts.Interval = time.Hour
	opts.Registry = reg
	r, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Stop)
	return r
}

func TestHistoryWindows(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("test.requests")
	g := reg.Gauge("test.depth")
	h := reg.Histogram("test.lat.ns")
	rec := startRecorder(t, reg, Options{Rank: 3})

	// window 1
	c.Add(5)
	g.Set(7)
	h.Observe(100)
	h.Observe(5000)
	if _, err := rec.CaptureNow(); err != nil {
		t.Fatal(err)
	}
	// window 2: counter +2, gauge moves, one more observation
	c.Add(2)
	g.Set(-1)
	h.Observe(50)
	if _, err := rec.CaptureNow(); err != nil {
		t.Fatal(err)
	}

	wins := rec.Windows()
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	byName := func(w Window, name string) *WindowMetric {
		for i := range w.Metrics {
			if w.Metrics[i].Name == name {
				return &w.Metrics[i]
			}
		}
		return nil
	}
	w1, w2 := wins[0], wins[1]
	if w1.Rank != 3 || w2.Rank != 3 {
		t.Errorf("ranks = %d, %d, want 3", w1.Rank, w2.Rank)
	}
	if m := byName(w1, "test.requests"); m == nil || m.Delta != 5 || m.Total != 5 {
		t.Errorf("window 1 counter = %+v, want delta 5 total 5", m)
	}
	if m := byName(w2, "test.requests"); m == nil || m.Delta != 2 || m.Total != 7 {
		t.Errorf("window 2 counter = %+v, want delta 2 total 7", m)
	}
	if m := byName(w1, "test.depth"); m == nil || m.Value != 7 {
		t.Errorf("window 1 gauge = %+v, want value 7", m)
	}
	if m := byName(w2, "test.depth"); m == nil || m.Value != -1 {
		t.Errorf("window 2 gauge = %+v, want value -1", m)
	}
	if m := byName(w1, "test.lat.ns"); m == nil || m.Count != 2 || m.Sum != 5100 {
		t.Errorf("window 1 histogram = %+v, want count 2 sum 5100", m)
	}
	if m := byName(w2, "test.lat.ns"); m == nil || m.Count != 1 || m.Sum != 50 {
		t.Errorf("window 2 histogram = %+v, want count 1 sum 50", m)
	}
	if w2.Start < w1.Start {
		t.Error("windows out of order")
	}

	// counter delta series reassembles the cumulative total
	var deltaSum uint64
	for _, w := range wins {
		if m := byName(w, "test.requests"); m != nil {
			deltaSum += m.Delta
		}
	}
	if deltaSum != c.Value() {
		t.Errorf("sum of window deltas = %d, want cumulative %d", deltaSum, c.Value())
	}
}

// TestHistoryCalQLEquality pins the acceptance criterion: a CalQL query
// over the on-disk history ring is byte-identical to offline aggregation
// of the same windows (decode every ring file, aggregate the records
// in-memory with the same query).
func TestHistoryCalQLEquality(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("eq.requests")
	h := reg.Histogram("eq.lat.ns")
	rec := startRecorder(t, reg, Options{})

	for i := 1; i <= 3; i++ {
		c.Add(uint64(10 * i))
		h.Observe(int64(100 * i))
		h.Observe(int64(999 * i))
		if _, err := rec.CaptureNow(); err != nil {
			t.Fatal(err)
		}
	}
	files := rec.Files()
	if len(files) != 3 {
		t.Fatalf("ring files = %d, want 3", len(files))
	}

	const q = "AGGREGATE count, sum(metric.delta), sum(metric.count), sum(bin.count) " +
		"GROUP BY time.window.start, metric.name " +
		"ORDER BY time.window.start, metric.name"

	fromRing, err := calql.QueryFiles(q, files)
	if err != nil {
		t.Fatalf("QueryFiles over ring: %v", err)
	}

	// offline: decode the same files into memory, aggregate the records
	offReg := attr.NewRegistry()
	tree := contexttree.New()
	var recs []snapshot.FlatRecord
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rd := calformat.NewReader(bytes.NewReader(data), offReg, tree)
		rs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("decode %s: %v", f, err)
		}
		recs = append(recs, rs...)
	}
	offline, err := calql.QueryRecords(q, offReg, recs)
	if err != nil {
		t.Fatalf("QueryRecords offline: %v", err)
	}

	if got, want := fromRing.String(), offline.String(); got != want {
		t.Errorf("ring query and offline aggregation differ:\n-- ring --\n%s\n-- offline --\n%s", got, want)
	}
	if len(fromRing.Rows) == 0 {
		t.Fatal("equality query returned no rows")
	}
}

func TestHistoryRingRetention(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("ring.ticks")
	dir := t.TempDir()
	rec := startRecorder(t, reg, Options{Dir: dir, MaxFiles: 3})

	for i := 0; i < 6; i++ {
		c.Inc()
		if _, err := rec.CaptureNow(); err != nil {
			t.Fatal(err)
		}
	}
	files := rec.Files()
	if len(files) != 3 {
		t.Fatalf("retained files = %d, want 3", len(files))
	}
	onDisk, err := filepath.Glob(filepath.Join(dir, "history-*.cali"))
	if err != nil {
		t.Fatal(err)
	}
	if len(onDisk) != 3 {
		t.Fatalf("on-disk files = %d, want 3 (%v)", len(onDisk), onDisk)
	}
	if len(rec.Windows()) != 3 {
		t.Fatalf("in-memory windows = %d, want 3 (same bound as files)", len(rec.Windows()))
	}
	// the retained tail is the newest windows: the last one carries total 6
	wins := rec.Windows()
	last := wins[len(wins)-1].Metrics
	if len(last) != 1 || last[0].Total != 6 {
		t.Errorf("newest window = %+v, want ring.ticks total 6", last)
	}
}

func TestHistoryAdoptExisting(t *testing.T) {
	enableTelemetry(t)
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	c := reg.Counter("adopt.ticks")
	rec := startRecorder(t, reg, Options{Dir: dir, MaxFiles: 4})
	c.Inc()
	if _, err := rec.CaptureNow(); err != nil {
		t.Fatal(err)
	}
	rec.Stop()
	before, _ := filepath.Glob(filepath.Join(dir, "history-*.cali"))
	if len(before) == 0 {
		t.Fatal("first recorder left no files")
	}

	// a second recorder over the same dir adopts the leftovers into its
	// ring so retention keeps holding across restarts
	reg2 := telemetry.NewRegistry()
	c2 := reg2.Counter("adopt.ticks")
	rec2 := startRecorder(t, reg2, Options{Dir: dir, MaxFiles: 4, Prefix: "history"})
	if got := len(rec2.Files()); got != len(before) {
		t.Fatalf("adopted files = %d, want %d", got, len(before))
	}
	for i := 0; i < 6; i++ {
		c2.Inc()
		if _, err := rec2.CaptureNow(); err != nil {
			t.Fatal(err)
		}
	}
	onDisk, _ := filepath.Glob(filepath.Join(dir, "history-*.cali"))
	if len(onDisk) > 4 {
		t.Errorf("retention did not cover adopted files: %d on disk", len(onDisk))
	}
}

func TestHistoryCounterResetRestartsDelta(t *testing.T) {
	schema, err := NewSchema(attr.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	prev := []telemetry.Metric{{Name: "a", Kind: telemetry.KindCounter, Counter: 100}}
	cur := []telemetry.Metric{{Name: "a", Kind: telemetry.KindCounter, Counter: 7}}
	recs := schema.AppendWindow(nil, 0, 1, 1, prev, cur)
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	v, ok := recs[0].GetByName(AttrDelta)
	if !ok || v.AsUint() != 7 {
		t.Errorf("reset delta = %v, want 7 (restart from current value)", v)
	}
}

// TestHistoryKillSwitch pins the overhead criterion: with capture
// disabled, a tick is one atomic load and allocates nothing.
func TestHistoryKillSwitch(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	reg.Counter("kill.ticks").Add(3)
	rec := startRecorder(t, reg, Options{})

	prev := SetEnabled(false)
	defer SetEnabled(prev)
	if Enabled() {
		t.Fatal("SetEnabled(false) did not take")
	}
	filesBefore := len(rec.Files())
	allocs := testing.AllocsPerRun(100, func() {
		path, err := rec.CaptureNow()
		if err != nil {
			t.Fatal(err)
		}
		if path != "" {
			t.Fatal("disabled capture wrote a file")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled capture allocates %v objects/op, want 0", allocs)
	}
	if got := len(rec.Files()); got != filesBefore {
		t.Errorf("disabled captures changed the ring: %d -> %d files", filesBefore, got)
	}

	SetEnabled(true)
	if path, err := rec.CaptureNow(); err != nil || path == "" {
		t.Fatalf("re-enabled capture = (%q, %v), want a file", path, err)
	}
}

// TestHistoryConcurrentQueries runs CalQL queries over the ring while the
// recorder keeps capturing — the -race acceptance scenario.
func TestHistoryConcurrentQueries(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("race.requests")
	h := reg.Histogram("race.lat.ns")
	// MaxFiles large enough that no file is evicted mid-query
	rec := startRecorder(t, reg, Options{MaxFiles: 256})
	c.Inc()
	h.Observe(10)
	if _, err := rec.CaptureNow(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(uint64(i%7) + 1)
			h.Observe(int64(i%100) * 10)
			if _, err := rec.CaptureNow(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				files := rec.Files()
				res, err := calql.QueryFiles(
					"AGGREGATE sum(metric.delta) GROUP BY metric.name ORDER BY metric.name", files)
				if err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				_ = res.String()
				_ = rec.Windows()
			}
		}()
	}
	// let queries finish, then stop the capture loop
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent capture/query deadlocked")
	}
}

func TestFilterWindows(t *testing.T) {
	var windows []Window
	for i := 0; i < 6; i++ {
		windows = append(windows, Window{Start: int64(i), Rank: i % 2})
	}
	if got := FilterWindows(windows, 0, -1); len(got) != 6 {
		t.Errorf("no filter kept %d windows, want 6", len(got))
	}
	got := FilterWindows(windows, 2, -1)
	if len(got) != 2 || got[0].Start != 4 || got[1].Start != 5 {
		t.Errorf("lastN=2 = %+v, want the newest two", got)
	}
	got = FilterWindows(windows, 0, 1)
	if len(got) != 3 {
		t.Fatalf("rank=1 kept %d windows, want 3", len(got))
	}
	for _, w := range got {
		if w.Rank != 1 {
			t.Errorf("rank filter leaked rank %d", w.Rank)
		}
	}
	if got := FilterWindows(windows, 1, 0); len(got) != 1 || got[0].Start != 4 {
		t.Errorf("rank=0 lastN=1 = %+v, want window start 4", got)
	}
}

func TestStartRequiresDir(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Fatal("Start without Dir must fail")
	}
}

func TestStopIsIdempotentAndCapturesTail(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	reg.Counter("tail.ticks").Add(2)
	rec := startRecorder(t, reg, Options{})
	rec.Stop()
	rec.Stop() // second Stop is a no-op
	wins := rec.Windows()
	if len(wins) != 1 {
		t.Fatalf("windows after Stop = %d, want 1 tail window", len(wins))
	}
	if len(wins[0].Metrics) != 1 || wins[0].Metrics[0].Total != 2 {
		t.Errorf("tail window = %+v, want tail.ticks total 2", wins[0].Metrics)
	}
}

// ExampleSchema_AppendWindow documents the record shape (also keeps the
// attribute-name constants honest in docs).
func ExampleSchema_AppendWindow() {
	schema, _ := NewSchema(attr.NewRegistry())
	cur := []telemetry.Metric{{Name: "demo.requests", Kind: telemetry.KindCounter, Counter: 42}}
	recs := schema.AppendWindow(nil, 1, 1000, 500, nil, cur)
	d, _ := recs[0].GetByName(AttrDelta)
	total, _ := recs[0].GetByName(AttrTotal)
	fmt.Println(len(recs), d.AsUint(), total.AsUint())
	// Output: 1 42 42
}
