package history_test

import (
	"bytes"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/core"
	. "caligo/internal/obs/history"
	"caligo/internal/telemetry"
)

// FuzzHistoryRoundTrip drives a telemetry window through the full
// history pipeline — AppendWindow records → .cali encode → decode →
// cluster-scheme aggregation — and checks the window's counter delta,
// gauge sample, and histogram count survive the round trip intact.
func FuzzHistoryRoundTrip(f *testing.F) {
	f.Add(uint64(5), int64(-3), int64(100), int64(5000))
	f.Add(uint64(0), int64(0), int64(0), int64(0))
	f.Add(uint64(1), int64(1), int64(1), int64(-1))
	f.Add(^uint64(0), int64(-1<<62), int64(1<<40), int64(7))
	f.Add(uint64(1<<33), int64(42), int64(-9000), int64(1<<20))
	f.Fuzz(func(t *testing.T, counter uint64, gauge int64, obs1, obs2 int64) {
		hist := telemetry.HistogramSnapshot{}
		// build the histogram through the public observe path so bins are
		// always internally consistent
		reg := telemetry.NewRegistry()
		prevTel := telemetry.SetEnabled(true)
		defer telemetry.SetEnabled(prevTel)
		h := reg.Histogram("fz.hist")
		h.Observe(obs1)
		h.Observe(obs2)
		hist = h.Snapshot()

		cur := []telemetry.Metric{
			{Name: "fz.counter", Kind: telemetry.KindCounter, Counter: counter},
			{Name: "fz.gauge", Kind: telemetry.KindGauge, Gauge: gauge},
			{Name: "fz.hist", Kind: telemetry.KindHistogram, Hist: hist},
		}
		// registry exports sort by name then kind; these names are already
		// sorted, the kinds distinct
		srcReg := attr.NewRegistry()
		schema, err := NewSchema(srcReg)
		if err != nil {
			t.Fatal(err)
		}
		recs := schema.AppendWindow(nil, 1, 10, 20, nil, cur)

		var buf bytes.Buffer
		w := calformat.NewWriter(&buf, srcReg, contexttree.New())
		for _, rec := range recs {
			if err := w.WriteFlat(rec); err != nil {
				t.Fatalf("encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}

		dstReg := attr.NewRegistry()
		rd := calformat.NewReader(bytes.NewReader(buf.Bytes()), dstReg, contexttree.New())
		decoded, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(decoded) != len(recs) {
			t.Fatalf("decoded %d records, encoded %d", len(decoded), len(recs))
		}

		db, err := core.NewDB(ClusterScheme(), dstReg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range decoded {
			db.Update(rec)
		}
		view, err := BuildClusterView(db, db, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		find := func(name, kind string) *ClusterMetric {
			for i := range view.Metrics {
				if view.Metrics[i].Name == name && view.Metrics[i].Kind == kind {
					return &view.Metrics[i]
				}
			}
			return nil
		}
		if m := find("fz.counter", "counter"); counter == 0 {
			if m != nil {
				t.Error("zero counter must not emit a record")
			}
		} else if m == nil || m.Delta != counter {
			t.Errorf("counter round trip = %+v, want delta %d", m, counter)
		}
		if m := find("fz.gauge", "gauge"); gauge == 0 {
			if m != nil {
				t.Error("zero one-shot gauge must not emit a record")
			}
		} else if m == nil || m.Min != gauge || m.Max != gauge {
			t.Errorf("gauge round trip = %+v, want %d", m, gauge)
		}
		if m := find("fz.hist", "histogram"); m == nil || m.Count != hist.Count || m.Sum != hist.Sum {
			t.Errorf("histogram round trip = %+v, want count %d sum %d", m, hist.Count, hist.Sum)
		} else {
			var binSum uint64
			for _, b := range m.Bins {
				binSum += b.Count
			}
			if binSum != hist.Count {
				t.Errorf("bin counts sum to %d, want %d", binSum, hist.Count)
			}
		}
	})
}
