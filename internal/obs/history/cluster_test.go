package history_test

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/obs"
	. "caligo/internal/obs/history"
	"caligo/internal/rnet"
	"caligo/internal/telemetry"
)

// TestClusterViewEqualsHandMergedScrapes pins the acceptance criterion:
// the /debug/cluster merged view equals a hand-merged union of per-rank
// /debug/metrics scrapes — counters sum, gauges keep min/max, histogram
// bins (and so quantiles) match a bin-wise telemetry.Histogram merge.
func TestClusterViewEqualsHandMergedScrapes(t *testing.T) {
	enableTelemetry(t)
	const ranks = 4

	// per-rank registries standing in for per-process /debug/metrics
	regs := make([]*telemetry.Registry, ranks)
	recs := make([]*Recorder, ranks)
	for r := 0; r < ranks; r++ {
		regs[r] = telemetry.NewRegistry()
		var err error
		// start before populating: the baseline snapshot must predate the
		// observations so the first window carries them as deltas
		recs[r], err = Start(Options{
			Dir:      t.TempDir(),
			Interval: time.Hour,
			Rank:     r,
			Registry: regs[r],
		})
		if err != nil {
			t.Fatal(err)
		}
		defer recs[r].Stop()
		regs[r].Counter("app.requests").Add(uint64(100 * (r + 1)))
		regs[r].Gauge("caligo.rnet.sync.lag.ns").Set(int64(1000 * (r + 1)))
		h := regs[r].Histogram("app.lat.ns")
		for i := 0; i < 10*(r+1); i++ {
			h.Observe(int64(50 + 100*r + i))
		}
		if _, err := recs[r].CaptureNow(); err != nil {
			t.Fatal(err)
		}
	}

	// one telemetry-reduction epoch over the emulated cluster
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var view *ClusterView
	err = world.Run(func(c *mpi.Comm) error {
		node, err := rnet.New(c, ClusterScheme(), recs[c.Rank()].Registry(),
			rnet.WithHistory(recs[c.Rank()]))
		if err != nil {
			return err
		}
		v, err := node.SyncTelemetry()
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			mu.Lock()
			view = v
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if view == nil {
		t.Fatal("root published no cluster view")
	}
	if got := LatestCluster(); got != view {
		t.Error("LatestCluster does not serve the root's published view")
	}
	if view.Ranks != ranks {
		t.Fatalf("view.Ranks = %d, want %d", view.Ranks, ranks)
	}

	find := func(name, kind string) *ClusterMetric {
		for i := range view.Metrics {
			if view.Metrics[i].Name == name && view.Metrics[i].Kind == kind {
				return &view.Metrics[i]
			}
		}
		t.Fatalf("cluster view missing %s (%s); have %d metrics", name, kind, len(view.Metrics))
		return nil
	}

	// counters sum: cluster delta == sum of per-rank scrape values
	var scrapedSum float64
	for r := 0; r < ranks; r++ {
		var buf bytes.Buffer
		if err := obs.NewExporter(regs[r]).Write(&buf); err != nil {
			t.Fatal(err)
		}
		m, err := obs.ParseMetrics(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		v, ok := m.Families["app_requests"].Value()
		if !ok {
			t.Fatalf("rank %d scrape missing app_requests", r)
		}
		scrapedSum += v
	}
	counter := find("app.requests", "counter")
	if float64(counter.Delta) != scrapedSum {
		t.Errorf("cluster counter delta = %d, hand-merged scrapes = %.0f", counter.Delta, scrapedSum)
	}
	if len(counter.Ranks) != ranks {
		t.Errorf("counter rank breakdown has %d entries, want %d", len(counter.Ranks), ranks)
	}
	for _, rv := range counter.Ranks {
		want := uint64(100 * (rv.Rank + 1))
		if rv.Delta != want || rv.Total != want {
			t.Errorf("rank %d counter = %+v, want delta/total %d", rv.Rank, rv, want)
		}
	}

	// gauges keep min/max; slowest rank from the sync-lag gauge
	gauge := find("caligo.rnet.sync.lag.ns", "gauge")
	if gauge.Min != 1000 || gauge.Max != 4000 {
		t.Errorf("gauge min/max = %d/%d, want 1000/4000", gauge.Min, gauge.Max)
	}
	if view.SlowestRank != ranks-1 || view.SlowestNS != 4000 {
		t.Errorf("slowest = rank %d (%d ns), want rank %d (4000 ns)",
			view.SlowestRank, view.SlowestNS, ranks-1)
	}

	// histogram bins match a bin-wise telemetry merge exactly
	mergedReg := telemetry.NewRegistry()
	merged := mergedReg.Histogram("app.lat.ns")
	for r := 0; r < ranks; r++ {
		merged.Merge(regs[r].Histogram("app.lat.ns"))
	}
	snap := merged.Snapshot()
	var wantBins []ClusterBin
	snap.EachBucket(func(upper float64, n uint64) {
		wantBins = append(wantBins, ClusterBin{Upper: upper, Count: n})
	})
	hist := find("app.lat.ns", "histogram")
	if len(hist.Bins) != len(wantBins) {
		t.Fatalf("cluster bins = %d, bin-wise merge = %d", len(hist.Bins), len(wantBins))
	}
	for i := range wantBins {
		if hist.Bins[i] != wantBins[i] {
			t.Errorf("bin %d: cluster %+v, merge %+v", i, hist.Bins[i], wantBins[i])
		}
	}
	if hist.Count != snap.Count || hist.Sum != snap.Sum {
		t.Errorf("cluster count/sum = %d/%d, merge = %d/%d",
			hist.Count, hist.Sum, snap.Count, snap.Sum)
	}

	// quantiles match the scrape estimator applied to the merged scrape
	var buf bytes.Buffer
	if err := obs.NewExporter(mergedReg).Write(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseMetrics(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want, ok := m.Families["app_lat_ns"].HistQuantile(q)
		if !ok {
			t.Fatalf("merged scrape has no q%.2f", q)
		}
		got, ok := hist.Quantile(q)
		if !ok {
			t.Fatalf("cluster metric has no q%.2f", q)
		}
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("q%.2f: cluster %v, merged scrape %v", q, got, want)
		}
	}
}

// TestSyncTelemetryAccumulatesEpochs checks the root's cumulative
// database spans epochs while gauge Last tracks the newest epoch only.
func TestSyncTelemetryAccumulatesEpochs(t *testing.T) {
	enableTelemetry(t)
	reg := telemetry.NewRegistry()
	c := reg.Counter("epoch.requests")
	g := reg.Gauge("epoch.depth")
	rec, err := Start(Options{Dir: t.TempDir(), Interval: time.Hour, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Stop()

	world, err := mpi.NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	views := make([]*ClusterView, 0, 2)
	err = world.Run(func(cm *mpi.Comm) error {
		node, err := rnet.New(cm, ClusterScheme(), rec.Registry(), rnet.WithHistory(rec))
		if err != nil {
			return err
		}
		// epoch 1
		c.Add(10)
		g.Set(5)
		if _, err := rec.CaptureNow(); err != nil {
			return err
		}
		v, err := node.SyncTelemetry()
		if err != nil {
			return err
		}
		views = append(views, v)
		// epoch 2: more increments, gauge moves down
		c.Add(7)
		g.Set(2)
		if _, err := rec.CaptureNow(); err != nil {
			return err
		}
		v, err = node.SyncTelemetry()
		if err != nil {
			return err
		}
		views = append(views, v)
		if node.TelemetryEpochs() != 2 {
			t.Errorf("TelemetryEpochs = %d, want 2", node.TelemetryEpochs())
		}
		if node.TelemetryGlobal() == nil {
			t.Error("root has no cumulative telemetry database")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	find := func(v *ClusterView, name string) *ClusterMetric {
		for i := range v.Metrics {
			if v.Metrics[i].Name == name {
				return &v.Metrics[i]
			}
		}
		return nil
	}
	if m := find(views[0], "epoch.requests"); m == nil || m.Delta != 10 {
		t.Errorf("epoch 1 counter = %+v, want delta 10", m)
	}
	if m := find(views[1], "epoch.requests"); m == nil || m.Delta != 17 {
		t.Errorf("epoch 2 cumulative counter = %+v, want delta 17", m)
	}
	if m := find(views[1], "epoch.depth"); m == nil || m.Min != 2 || m.Max != 5 {
		t.Errorf("gauge across epochs = %+v, want min 2 max 5", m)
	} else if len(m.Ranks) != 1 || m.Ranks[0].Last != 2 {
		t.Errorf("gauge Last = %+v, want the epoch-2 sample 2", m.Ranks)
	}
	if views[1].Epochs != 2 {
		t.Errorf("view.Epochs = %d, want 2", views[1].Epochs)
	}
}

// TestCombineEncodedEmpty checks the reduction combine tolerates empty
// payloads (ranks without a recorder contribute empty deltas).
func TestCombineEncodedEmpty(t *testing.T) {
	reg := attr.NewRegistry()
	schema, err := NewSchema(reg)
	if err != nil {
		t.Fatal(err)
	}
	recs := schema.AppendWindow(nil, 2, 100, 50, nil, []telemetry.Metric{
		{Name: "x", Kind: telemetry.KindCounter, Counter: 9},
	})
	db := mustClusterDB(t, reg)
	for _, r := range recs {
		db.Update(r)
	}
	empty := mustClusterDB(t, attr.NewRegistry())
	out, err := CombineEncoded(db.EncodeState(), empty.EncodeState())
	if err != nil {
		t.Fatal(err)
	}
	roundtrip := mustClusterDB(t, attr.NewRegistry())
	if err := roundtrip.MergeEncodedState(out); err != nil {
		t.Fatal(err)
	}
	view, err := BuildClusterView(roundtrip, roundtrip, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	if view.Ranks != 1 || len(view.Metrics) != 1 || view.Metrics[0].Delta != 9 {
		t.Errorf("round-tripped view = %+v, want one rank, x delta 9", view)
	}
}

func mustClusterDB(t *testing.T, reg *attr.Registry) *core.DB {
	t.Helper()
	db, err := core.NewDB(ClusterScheme(), reg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestWriteClusterJSONEmpty checks the endpoint body before any epoch.
func TestWriteClusterJSONEmpty(t *testing.T) {
	PublishCluster(nil)
	var buf bytes.Buffer
	if err := WriteClusterJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"slowest_rank": -1`) || !strings.Contains(out, `"metrics": []`) {
		t.Errorf("empty cluster body = %s", out)
	}
}
