package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"testing"

	"caligo/internal/telemetry"
	"caligo/internal/testutil"
)

// withTelemetry scopes the telemetry kill switch for a test.
func withTelemetry(t *testing.T, on bool) {
	t.Helper()
	prev := telemetry.SetEnabled(on)
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
}

func TestSanitizeName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"caligo.query.shards", "caligo_query_shards"},
		{"already_valid:name", "already_valid:name"},
		{"caligo.rnet.epoch.ns", "caligo_rnet_epoch_ns"},
		{"9starts.with.digit", "_starts_with_digit"},
		{"", "_"},
		{"spaces and-dashes", "spaces_and_dashes"},
		{"UPPER.case", "UPPER_case"},
	}
	for _, tc := range tests {
		if got := SanitizeName(tc.in); got != tc.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// stability: same input, same output
	if SanitizeName("a.b") != SanitizeName("a.b") {
		t.Error("SanitizeName not stable")
	}
}

func TestExporterText(t *testing.T) {
	withTelemetry(t, true)
	reg := telemetry.NewRegistry()
	reg.Counter("test.events").Add(42)
	reg.Gauge("test.depth").Set(-7)
	h := reg.Histogram("test.lat.ns")
	h.Observe(100)
	h.Observe(100)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := NewExporter(reg).Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE test_events counter\n",
		"test_events_total 42\n",
		"# TYPE test_depth gauge\n",
		"test_depth -7\n",
		"# TYPE test_lat_ns histogram\n",
		"test_lat_ns_sum 5200\n",
		"test_lat_ns_count 3\n",
		`test_lat_ns_bucket{le="+Inf"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("exposition does not end with # EOF:\n%s", out)
	}
}

func TestExporterRoundTrip(t *testing.T) {
	withTelemetry(t, true)
	reg := telemetry.NewRegistry()
	reg.Counter("rt.count").Add(9)
	reg.Gauge("rt.gauge").Set(123)
	h := reg.Histogram("rt.hist")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}

	var buf bytes.Buffer
	if err := NewExporter(reg).Write(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("parse back exporter output: %v", err)
	}
	if !m.EOF {
		t.Error("round-trip lost the # EOF terminator")
	}
	if v, ok := m.Families["rt_count"].Value(); !ok || v != 9 {
		t.Errorf("rt_count = %v, %v; want 9", v, ok)
	}
	if v, ok := m.Families["rt_gauge"].Value(); !ok || v != 123 {
		t.Errorf("rt_gauge = %v, %v; want 123", v, ok)
	}
	f := m.Families["rt_hist"]
	if f == nil || f.Type != "histogram" {
		t.Fatalf("rt_hist family missing or wrong type: %+v", f)
	}
	if c, ok := f.HistCount(); !ok || c != 1000 {
		t.Errorf("rt_hist count = %v, %v; want 1000", c, ok)
	}
	if s, ok := f.HistSum(); !ok || s != 500500 {
		t.Errorf("rt_hist sum = %v, %v; want 500500", s, ok)
	}
	// client-side quantile from the parsed buckets tracks the server-side
	// estimate within the histogram's relative-error bound
	want := h.Snapshot().Quantile(0.5)
	got, ok := f.HistQuantile(0.5)
	if !ok {
		t.Fatal("HistQuantile found no buckets")
	}
	if relErr := math.Abs(got-want) / want; relErr > 0.2 {
		t.Errorf("client p50 %g vs server p50 %g (relErr %g)", got, want, relErr)
	}
}

func TestExporterCumulativeBuckets(t *testing.T) {
	withTelemetry(t, true)
	reg := telemetry.NewRegistry()
	h := reg.Histogram("cum.hist")
	h.Observe(0)  // bottom bin (le="0")
	h.Observe(1)  // first positive bin
	h.Observe(10) // later bin
	h.ObserveFloat(math.Inf(1))

	var buf bytes.Buffer
	if err := NewExporter(reg).Write(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Families["cum_hist"]
	if f == nil {
		t.Fatal("cum_hist family missing")
	}
	// buckets must be cumulative and non-decreasing, ending at _count
	var prev float64 = -1
	var last float64
	sawZero, sawInf := false, false
	for _, s := range f.Samples {
		if s.Name != "cum_hist_bucket" {
			continue
		}
		if s.Value < prev {
			t.Errorf("bucket le=%q value %g below previous %g", s.Labels["le"], s.Value, prev)
		}
		prev = s.Value
		last = s.Value
		switch s.Labels["le"] {
		case "0":
			sawZero = true
			if s.Value != 1 {
				t.Errorf("le=0 bucket = %g, want 1", s.Value)
			}
		case "+Inf":
			sawInf = true
		}
	}
	if !sawZero {
		t.Error("bottom bin not exposed as le=\"0\"")
	}
	if !sawInf {
		t.Error("no le=\"+Inf\" bucket")
	}
	if c, _ := f.HistCount(); last != c || c != 4 {
		t.Errorf("+Inf bucket %g != count %g (want 4)", last, c)
	}
}

// TestExporterSteadyStateAllocs pins the exporter's steady-state scrape
// at zero allocations per run — and therefore zero per metric — once the
// snapshot storage, render buffer, and name cache have warmed up.
func TestExporterSteadyStateAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	withTelemetry(t, true)
	reg := telemetry.NewRegistry()
	for i := 0; i < 16; i++ {
		reg.Counter(fmt.Sprintf("steady.counter.%d", i)).Add(uint64(i))
		reg.Gauge(fmt.Sprintf("steady.gauge.%d", i)).Set(int64(i))
		h := reg.Histogram(fmt.Sprintf("steady.hist.%d", i))
		for v := int64(1); v < 1<<20; v *= 3 {
			h.Observe(v)
		}
	}
	e := NewExporter(reg)
	// warm up caches and buffers
	for i := 0; i < 3; i++ {
		if err := e.Write(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := e.Write(io.Discard); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state scrape allocates %.1f times per run, want 0", allocs)
	}
}

// TestExporterScrapeWhileMutate hammers the exporter from several
// goroutines while other goroutines mutate every metric kind, under
// whatever detector the build has (-race in CI). Every scrape must stay
// parseable with cumulative buckets intact.
func TestExporterScrapeWhileMutate(t *testing.T) {
	withTelemetry(t, true)
	reg := telemetry.NewRegistry()
	c := reg.Counter("mut.count")
	g := reg.Gauge("mut.gauge")
	h := reg.Histogram("mut.hist")
	e := NewExporter(reg)

	stop := make(chan struct{})
	var mutators, scrapers sync.WaitGroup
	for w := 0; w < 4; w++ {
		mutators.Add(1)
		go func(seed int64) {
			defer mutators.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(v)
				h.Observe(v&0xffff + 1)
				// churn the registry map too: metric creation is the
				// only write path the registry lock guards
				reg.Counter("mut.count").Inc()
				v = v*6364136223846793005 + 1442695040888963407
			}
		}(int64(w + 1))
	}
	scrapeErrs := make(chan error, 8)
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := e.Write(&buf); err != nil {
					scrapeErrs <- err
					return
				}
				m, err := ParseMetrics(bytes.NewReader(buf.Bytes()))
				if err != nil {
					scrapeErrs <- fmt.Errorf("scrape %d unparseable: %w", i, err)
					return
				}
				if !m.EOF {
					scrapeErrs <- fmt.Errorf("scrape %d missing # EOF", i)
					return
				}
				f := m.Families["mut_hist"]
				if f != nil {
					var prev float64 = -1
					for _, smp := range f.Samples {
						if smp.Name != "mut_hist_bucket" {
							continue
						}
						if smp.Value < prev {
							scrapeErrs <- fmt.Errorf("scrape %d: bucket series not cumulative", i)
							return
						}
						prev = smp.Value
					}
				}
			}
		}()
	}
	// let the scrapers finish, then stop the mutators
	scrapers.Wait()
	close(stop)
	mutators.Wait()
	select {
	case err := <-scrapeErrs:
		t.Fatal(err)
	default:
	}
}

func TestParseMetricsErrors(t *testing.T) {
	bad := []string{
		"metric_without_value\n# EOF\n",
		"m{le=\"unterminated} 1\n# EOF\n",
		"m 1\n# EOF\nmore 2\n",
		"m notanumber\n# EOF\n",
	}
	for _, in := range bad {
		if _, err := ParseMetrics(strings.NewReader(in)); err == nil {
			t.Errorf("ParseMetrics(%q) accepted malformed input", in)
		}
	}
	// plain Prometheus output (no # EOF) parses but reports EOF=false
	m, err := ParseMetrics(strings.NewReader("m 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.EOF {
		t.Error("EOF reported without terminator")
	}
}
