package calql

import (
	"strings"
	"testing"

	"caligo/internal/core"
)

func TestParsePaperExamples(t *testing.T) {
	// every aggregation scheme that appears in the paper must parse
	examples := []string{
		"AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration",
		"AGGREGATE count, sum(time.duration) GROUP BY function",
		"AGGREGATE count GROUP BY kernel",
		"AGGREGATE sum(aggregate.count) GROUP BY kernel",
		"AGGREGATE count, sum(time.duration) GROUP BY mpi.function",
		"AGGREGATE sum(time.duration) GROUP BY kernel, mpi.function, mpi.rank",
		"AGGREGATE count, sum(time.duration)\nGROUP BY function, annotation, amr.level, \\\n kernel, iteration#mainloop, \\\n mpi.rank, mpi.function",
		"AGGREGATE sum(time.duration)\nWHERE not(mpi.function)\nGROUP BY amr.level,iteration#mainloop",
		"AGGREGATE sum(time.duration)\nWHERE not(mpi.function)\nGROUP BY amr.level,mpi.rank",
	}
	for _, ex := range examples {
		q, err := Parse(ex)
		if err != nil {
			t.Errorf("Parse(%q): %v", ex, err)
			continue
		}
		if !q.HasAggregation() {
			t.Errorf("Parse(%q): no aggregation detected", ex)
		}
		if _, err := q.Scheme(); err != nil {
			t.Errorf("Scheme(%q): %v", ex, err)
		}
	}
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse(`
		LET msec = scale(time.duration, 0.001)
		SELECT kernel, sum#msec AS time
		AGGREGATE count, sum(msec)
		WHERE not(mpi.function), mpi.rank < 8
		GROUP BY kernel
		ORDER BY sum#msec DESC, kernel
		FORMAT csv
		LIMIT 10`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Lets) != 1 || q.Lets[0].Name != "msec" || q.Lets[0].Kind != LetScale || q.Lets[0].Factor != 0.001 {
		t.Errorf("Lets = %+v", q.Lets)
	}
	if len(q.Select) != 2 || q.Select[0].Label != "kernel" ||
		q.Select[1].Label != "sum#msec" || q.Select[1].Alias != "time" {
		t.Errorf("Select = %+v", q.Select)
	}
	if len(q.Ops) != 2 || q.Ops[0].Kind != core.OpCount || q.Ops[1].Kind != core.OpSum || q.Ops[1].Target != "msec" {
		t.Errorf("Ops = %+v", q.Ops)
	}
	if len(q.Where) != 2 {
		t.Fatalf("Where = %+v", q.Where)
	}
	if q.Where[0].Attr != "mpi.function" || q.Where[0].Op != CondExist || !q.Where[0].Negate {
		t.Errorf("Where[0] = %+v", q.Where[0])
	}
	if q.Where[1].Attr != "mpi.rank" || q.Where[1].Op != CondLt || q.Where[1].Value != "8" {
		t.Errorf("Where[1] = %+v", q.Where[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "kernel" {
		t.Errorf("GroupBy = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Descending || q.OrderBy[1].Descending {
		t.Errorf("OrderBy = %+v", q.OrderBy)
	}
	if q.Format.Kind != "csv" || q.Limit != 10 {
		t.Errorf("Format=%v Limit=%d", q.Format, q.Limit)
	}
}

func TestParseConditionForms(t *testing.T) {
	tests := []struct {
		in     string
		attr   string
		op     CondOp
		value  string
		negate bool
	}{
		{"WHERE kernel", "kernel", CondExist, "", false},
		{"WHERE not(kernel)", "kernel", CondExist, "", true},
		{"WHERE kernel=advec", "kernel", CondEq, "advec", false},
		{"WHERE kernel!=advec", "kernel", CondEq, "advec", true},
		{"WHERE not(kernel=advec)", "kernel", CondEq, "advec", true},
		{"WHERE not(not(kernel))", "kernel", CondExist, "", false},
		{"WHERE mpi.rank<4", "mpi.rank", CondLt, "4", false},
		{"WHERE mpi.rank<=4", "mpi.rank", CondLe, "4", false},
		{"WHERE mpi.rank>4", "mpi.rank", CondGt, "4", false},
		{"WHERE mpi.rank>=4", "mpi.rank", CondGe, "4", false},
		{`WHERE region="a b"`, "region", CondEq, "a b", false},
		{"WHERE x=-3", "x", CondEq, "-3", false},
	}
	for _, tt := range tests {
		q, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if len(q.Where) != 1 {
			t.Errorf("Parse(%q): %d conditions", tt.in, len(q.Where))
			continue
		}
		c := q.Where[0]
		if c.Attr != tt.attr || c.Op != tt.op || c.Value != tt.value || c.Negate != tt.negate {
			t.Errorf("Parse(%q) = %+v, want {%s %v %q negate=%v}",
				tt.in, c, tt.attr, tt.op, tt.value, tt.negate)
		}
	}
}

func TestParseHistogram(t *testing.T) {
	q, err := Parse("AGGREGATE histogram(time.duration, 0, 1000, 20) GROUP BY kernel")
	if err != nil {
		t.Fatal(err)
	}
	op := q.Ops[0]
	if op.Kind != core.OpHistogram || op.HistMin != 0 || op.HistMax != 1000 || op.HistBins != 20 {
		t.Errorf("op = %+v", op)
	}
}

func TestParseSelectAggregations(t *testing.T) {
	q, err := Parse("SELECT kernel, count, sum(time) GROUP BY kernel")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) != 2 {
		t.Fatalf("Ops = %+v", q.Ops)
	}
	if q.Select[1].Label != "aggregate.count" || q.Select[2].Label != "sum#time" {
		t.Errorf("Select = %+v", q.Select)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * WHERE kernel FORMAT json")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || !q.Select[0].Star {
		t.Errorf("Select = %+v", q.Select)
	}
	if q.HasAggregation() {
		t.Error("pure selection query should not aggregate")
	}
}

func TestParseAliases(t *testing.T) {
	q, err := Parse("AGGREGATE sum(time.duration) AS total GROUP BY kernel")
	if err != nil {
		t.Fatal(err)
	}
	if q.Ops[0].Alias != "total" || q.Ops[0].ResultName() != "total" {
		t.Errorf("Ops[0] = %+v", q.Ops[0])
	}
}

func TestParseLetVariants(t *testing.T) {
	q, err := Parse("LET sec = scale(time.duration, 1e-6), it = truncate(iteration, 10), src = first(kernel, mpi.function)")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Lets) != 3 {
		t.Fatalf("Lets = %+v", q.Lets)
	}
	if q.Lets[1].Kind != LetTruncate || q.Lets[1].Factor != 10 {
		t.Errorf("truncate = %+v", q.Lets[1])
	}
	if q.Lets[2].Kind != LetFirst || len(q.Lets[2].Args) != 2 {
		t.Errorf("first = %+v", q.Lets[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                // no clauses is fine? -> actually empty parses to empty query; see below
		"FROB x",                          // unknown clause
		"AGGREGATE frobnicate(x)",         // unknown operator
		"AGGREGATE sum",                   // missing args
		"AGGREGATE sum()",                 // empty args
		"AGGREGATE count(x)",              // count takes no args
		"AGGREGATE histogram(x, 1, 2)",    // missing bins
		"AGGREGATE histogram(x, a, b, c)", // non-numeric
		"GROUP BY kernel",                 // group by without aggregate
		"GROUP kernel",                    // missing BY
		"ORDER kernel",                    // missing BY
		"AGGREGATE count GROUP BY kernel, kernel",    // duplicate key
		"WHERE not kernel",                           // NOT without parens
		"WHERE not(kernel",                           // unclosed
		"WHERE kernel=",                              // missing value
		"FORMAT nonsense",                            // unknown format
		"LIMIT x",                                    // non-numeric limit
		"LIMIT -1",                                   // negative limit
		"LET x = bogus(y)",                           // unknown let op
		"LET x = scale(y)",                           // missing factor
		"LET x = truncate(y, 0)",                     // zero step
		"LET x = scale(y, 2), x = scale(z, 3)",       // duplicate let
		"SELECT foo AGGREGATE count GROUP BY kernel", // foo not selectable
		"AGGREGATE sum(x) GROUP BY x",                // key == aggregation attr
		"WHERE a ! b",                                // stray !
		`WHERE a="unclosed`,                          // unterminated string
	}
	for _, in := range bad[1:] { // skip the empty-string case here
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
	// empty input parses to an empty query
	q, err := Parse("")
	if err != nil || q.HasAggregation() {
		t.Errorf("Parse(\"\") = %+v, %v", q, err)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("aggregate Count, SUM(t) group by k order by k desc format TABLE")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ops) != 2 || len(q.GroupBy) != 1 || !q.OrderBy[0].Descending || q.Format.Kind != "table" {
		t.Errorf("q = %+v", q)
	}
}

func TestParseQuotedLabels(t *testing.T) {
	q, err := Parse(`AGGREGATE sum("my weird label") GROUP BY "another label"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Ops[0].Target != "my weird label" || q.GroupBy[0] != "another label" {
		t.Errorf("q = %+v", q)
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		"AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration",
		"LET msec = scale(time.duration, 0.001) SELECT kernel AGGREGATE count GROUP BY kernel",
		"AGGREGATE sum(time.duration) WHERE not(mpi.function), mpi.rank>=2 GROUP BY amr.level ORDER BY amr.level DESC FORMAT csv LIMIT 5",
		"SELECT * WHERE kernel=advec-mom FORMAT json",
		"AGGREGATE histogram(x,0,100,10) GROUP BY k",
		"AGGREGATE min(x), max(x), avg(x), stddev(x), scount(x) GROUP BY k",
		"EXPLAIN SELECT * WHERE kernel=advec-mom FORMAT json",
		"EXPLAIN ANALYZE AGGREGATE count, sum(time.duration) GROUP BY function",
	}
	for _, in := range queries {
		q1, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		printed := q1.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", printed, err)
			continue
		}
		if q2.String() != printed {
			t.Errorf("round trip not a fixpoint:\n 1st: %s\n 2nd: %s", printed, q2.String())
		}
	}
}

func TestParseExplain(t *testing.T) {
	cases := []struct {
		in   string
		mode ExplainMode
	}{
		{"SELECT *", ExplainNone},
		{"EXPLAIN SELECT *", ExplainPlan},
		{"explain analyze SELECT *", ExplainAnalyze},
		{"EXPLAIN ANALYZE AGGREGATE count GROUP BY k", ExplainAnalyze},
		{"EXPLAIN", ExplainPlan},         // a bare EXPLAIN wraps the empty (pass-through) query
		{"EXPLAIN ANALYZE", ExplainAnalyze},
	}
	for _, tc := range cases {
		q, err := Parse(tc.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tc.in, err)
			continue
		}
		if q.Explain != tc.mode {
			t.Errorf("Parse(%q).Explain = %v, want %v", tc.in, q.Explain, tc.mode)
		}
		if inner := q.WithoutExplain(); inner.Explain != ExplainNone {
			t.Errorf("WithoutExplain kept mode %v", inner.Explain)
		}
	}
	// "explain" is only a keyword at statement start: elsewhere it stays an
	// ordinary identifier.
	q, err := Parse("SELECT explain WHERE explain=analyze")
	if err != nil {
		t.Fatalf("explain as identifier: %v", err)
	}
	if q.Explain != ExplainNone || q.Select[0].Label != "explain" {
		t.Errorf("mid-query explain mis-parsed: %+v", q)
	}
	// ... and EXPLAIN EXPLAIN is therefore a plain parse error.
	if _, err := Parse("EXPLAIN EXPLAIN SELECT *"); err == nil {
		t.Error("EXPLAIN EXPLAIN parsed; want error")
	}
}

func TestLexerIdentifiersWithSpecialChars(t *testing.T) {
	toks, err := lex("iteration#mainloop time.duration sum#x advec-mom a/b")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"iteration#mainloop", "time.duration", "sum#x", "advec-mom", "a/b"}
	for i, w := range want {
		if toks[i].kind != tokIdent || toks[i].text != w {
			t.Errorf("tok[%d] = %v %q, want ident %q", i, toks[i].kind, toks[i].text, w)
		}
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := lex("42 -7 2.5 1e-6 2d.kernel")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].kind != tokNumber || toks[0].text != "42" {
		t.Errorf("tok0 = %+v", toks[0])
	}
	if toks[1].kind != tokNumber || toks[1].text != "-7" {
		t.Errorf("tok1 = %+v", toks[1])
	}
	if toks[2].kind != tokNumber || toks[2].text != "2.5" {
		t.Errorf("tok2 = %+v", toks[2])
	}
	if toks[3].kind != tokNumber || toks[3].text != "1e-6" {
		t.Errorf("tok3 = %+v", toks[3])
	}
	// digit-led identifier
	if toks[4].kind != tokIdent || toks[4].text != "2d.kernel" {
		t.Errorf("tok4 = %+v", toks[4])
	}
}

func TestSchemeExtraction(t *testing.T) {
	q := MustParse("AGGREGATE count, sum(t) GROUP BY a, b")
	s, err := q.Scheme()
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "AGGREGATE count, sum(t) GROUP BY a, b" {
		t.Errorf("scheme = %q", s)
	}
	q2 := MustParse("SELECT * WHERE x")
	s2, err := q2.Scheme()
	if err != nil || s2 != nil {
		t.Errorf("non-aggregating query: scheme = %v, err = %v", s2, err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("FROB")
}

func TestConditionString(t *testing.T) {
	tests := []struct {
		c    Condition
		want string
	}{
		{Condition{Attr: "k", Op: CondExist}, "k"},
		{Condition{Attr: "k", Op: CondExist, Negate: true}, "not(k)"},
		{Condition{Attr: "k", Op: CondEq, Value: "v"}, "k=v"},
		{Condition{Attr: "k", Op: CondEq, Value: "v", Negate: true}, "k!=v"},
		{Condition{Attr: "k", Op: CondLt, Value: "3"}, "k<3"},
		{Condition{Attr: "k", Op: CondGe, Value: "3", Negate: true}, "not(k>=3)"},
		{Condition{Attr: "k", Op: CondEq, Value: "a b"}, `k="a b"`},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Condition.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestQueryStringEmptyValueQuoting(t *testing.T) {
	q := MustParse(`WHERE k=""`)
	if q.Where[0].Value != "" {
		t.Errorf("value = %q", q.Where[0].Value)
	}
	if !strings.Contains(q.String(), `k=""`) {
		t.Errorf("String = %q", q.String())
	}
}
