package calql

import "testing"

// FuzzParse: the query parser must never panic on arbitrary input, and
// every successfully parsed query must round-trip through its canonical
// printed form.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration",
		"AGGREGATE sum(time.duration) WHERE not(mpi.function) GROUP BY amr.level,iteration#mainloop",
		"SELECT * WHERE kernel=advec FORMAT json LIMIT 3",
		"LET x = scale(y, 0.5) AGGREGATE histogram(x,0,10,4), percent_total(x) GROUP BY k ORDER BY k DESC",
		"AGGREGATE ratio(a,b) AS r GROUP BY k",
		"EXPLAIN SELECT * WHERE kernel=advec FORMAT json",
		"EXPLAIN ANALYZE AGGREGATE count, sum(time.duration) GROUP BY function",
		"EXPLAIN",
		"EXPLAIN ANALYZE",
		"SELECT explain", // "explain" is only a keyword at statement start
		`WHERE a="quoted \" string", b!=3`,
		"GROUP",
		"AGGREGATE",
		"((((",
		"\\\n\\\n",
		"SELECT \x00",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %q -> %q: %v", input, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", input, printed, q2.String())
		}
	})
}
