package calql

import (
	"fmt"
	"strconv"
	"strings"

	"caligo/internal/core"
)

// clause-start keywords; identifiers matching these (case-insensitively)
// at clause position start a new clause.
var clauseKeywords = []string{"let", "select", "aggregate", "group", "where", "order", "format", "limit"}

// knownFormats lists the output formatters the query engine provides.
var knownFormats = map[string]bool{
	"table": true, "csv": true, "json": true, "tree": true, "expand": true, "cali": true,
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a query in the aggregation description language.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q := &Query{Limit: -1}

	// EXPLAIN [ANALYZE] is a statement prefix, valid only before the first
	// clause; elsewhere "explain" stays an ordinary identifier.
	if keywordIs(p.peek(), "explain") {
		p.next()
		q.Explain = ExplainPlan
		if keywordIs(p.peek(), "analyze") {
			p.next()
			q.Explain = ExplainAnalyze
		}
	}

	for !p.at(tokEOF) {
		t := p.peek()
		switch {
		case keywordIs(t, "let"):
			p.next()
			if err := p.parseLets(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "select"):
			p.next()
			if err := p.parseSelect(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "aggregate"):
			p.next()
			if err := p.parseAggregate(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "group"):
			p.next()
			if !keywordIs(p.peek(), "by") {
				return nil, p.errf("expected BY after GROUP")
			}
			p.next()
			if err := p.parseGroupBy(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "where"):
			p.next()
			if err := p.parseWhere(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "order"):
			p.next()
			if !keywordIs(p.peek(), "by") {
				return nil, p.errf("expected BY after ORDER")
			}
			p.next()
			if err := p.parseOrderBy(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "format"):
			p.next()
			if err := p.parseFormat(q); err != nil {
				return nil, err
			}
		case keywordIs(t, "limit"):
			p.next()
			if err := p.parseLimit(q); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected a clause keyword (SELECT, AGGREGATE, GROUP BY, WHERE, ORDER BY, FORMAT, LIMIT, LET), got %q", t.text)
		}
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse panicking on error, for static query definitions.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) peek() token       { return p.toks[p.pos] }
func (p *parser) next() token       { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.pos].kind == k }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("calql: offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// atClauseKeyword reports whether the current token starts a new clause.
func (p *parser) atClauseKeyword() bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	for _, kw := range clauseKeywords {
		if strings.EqualFold(t.text, kw) {
			return true
		}
	}
	return false
}

// expectLabel consumes an identifier or quoted string used as a label.
// Empty labels are rejected: every attribute has a non-empty name.
func (p *parser) expectLabel(what string) (string, error) {
	t := p.peek()
	if t.kind != tokIdent && t.kind != tokString {
		return "", p.errf("expected %s, got %s", what, t.kind)
	}
	if t.text == "" {
		return "", p.errf("expected %s, got an empty string", what)
	}
	p.next()
	return t.text, nil
}

// parseAlias consumes an optional "AS alias".
func (p *parser) parseAlias() (string, error) {
	if !keywordIs(p.peek(), "as") {
		return "", nil
	}
	p.next()
	return p.expectLabel("alias after AS")
}

// parseOpCall parses op(args...) after the op-name identifier has been
// consumed.
func (p *parser) parseOpCall(kind core.OpKind) (core.OpSpec, error) {
	spec := core.OpSpec{Kind: kind}
	if !p.at(tokLParen) {
		if kind.NeedsTarget() {
			return spec, p.errf("operator %s requires arguments", kind)
		}
		return spec, nil // bare "count"
	}
	p.next() // (
	if p.at(tokRParen) {
		p.next()
		if kind.NeedsTarget() {
			return spec, p.errf("operator %s requires a target attribute", kind)
		}
		return spec, nil // "count()"
	}
	target, err := p.expectLabel("attribute label")
	if err != nil {
		return spec, err
	}
	if !kind.NeedsTarget() {
		return spec, p.errf("operator %s takes no arguments", kind)
	}
	spec.Target = target
	if kind == core.OpHistogram {
		nums := make([]float64, 0, 3)
		for p.at(tokComma) {
			p.next()
			t := p.peek()
			if t.kind != tokNumber {
				return spec, p.errf("histogram parameters must be numbers, got %q", t.text)
			}
			p.next()
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return spec, p.errf("bad number %q: %v", t.text, err)
			}
			nums = append(nums, f)
		}
		if len(nums) != 3 {
			return spec, p.errf("histogram(attr,min,max,bins) requires 3 numeric parameters, got %d", len(nums))
		}
		spec.HistMin, spec.HistMax, spec.HistBins = nums[0], nums[1], int(nums[2])
	}
	if !p.at(tokRParen) {
		return spec, p.errf("expected ')' after operator arguments, got %q", p.peek().text)
	}
	p.next()
	return spec, nil
}

// parsePostOp parses percent_total(x) or ratio(x,y) after the name has
// been consumed.
func (p *parser) parsePostOp(kind PostOpKind) (PostOp, error) {
	op := PostOp{Kind: kind}
	if !p.at(tokLParen) {
		return op, p.errf("%s requires arguments", kind)
	}
	p.next()
	target, err := p.expectLabel("attribute label")
	if err != nil {
		return op, err
	}
	op.Target = target
	if kind == PostRatio {
		if !p.at(tokComma) {
			return op, p.errf("ratio(numerator, denominator) requires two attributes")
		}
		p.next()
		den, err := p.expectLabel("attribute label")
		if err != nil {
			return op, err
		}
		op.Target2 = den
	}
	if !p.at(tokRParen) {
		return op, p.errf("expected ')' after %s arguments", kind)
	}
	p.next()
	op.Alias, err = p.parseAlias()
	return op, err
}

func (p *parser) parseAggregate(q *Query) error {
	for {
		name, err := p.expectLabel("operator name")
		if err != nil {
			return err
		}
		switch strings.ToLower(name) {
		case "percent_total":
			op, err := p.parsePostOp(PostPercentTotal)
			if err != nil {
				return err
			}
			q.PostOps = append(q.PostOps, op)
		case "ratio":
			op, err := p.parsePostOp(PostRatio)
			if err != nil {
				return err
			}
			q.PostOps = append(q.PostOps, op)
		default:
			kind, ok := core.ParseOpKind(strings.ToLower(name))
			if !ok {
				return p.errf("unknown aggregation operator %q", name)
			}
			spec, err := p.parseOpCall(kind)
			if err != nil {
				return err
			}
			spec.Alias, err = p.parseAlias()
			if err != nil {
				return err
			}
			q.Ops = append(q.Ops, spec)
		}
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseSelect(q *Query) error {
	for {
		t := p.peek()
		switch {
		case t.kind == tokStar:
			p.next()
			q.Select = append(q.Select, SelectItem{Star: true})
		case t.kind == tokIdent || t.kind == tokString:
			name := t.text
			p.next()
			kind, isOp := core.ParseOpKind(strings.ToLower(name))
			if isOp && (p.at(tokLParen) || !kind.NeedsTarget()) && t.kind == tokIdent {
				// an aggregation inside SELECT, e.g. "SELECT kernel, sum(time)"
				spec, err := p.parseOpCall(kind)
				if err != nil {
					return err
				}
				alias, err := p.parseAlias()
				if err != nil {
					return err
				}
				spec.Alias = alias
				q.Ops = append(q.Ops, spec)
				q.Select = append(q.Select, SelectItem{Label: spec.ResultName()})
			} else {
				alias, err := p.parseAlias()
				if err != nil {
					return err
				}
				q.Select = append(q.Select, SelectItem{Label: name, Alias: alias})
			}
		default:
			return p.errf("expected projection item, got %s", t.kind)
		}
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseGroupBy(q *Query) error {
	for {
		label, err := p.expectLabel("attribute label")
		if err != nil {
			return err
		}
		q.GroupBy = append(q.GroupBy, label)
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

// parseCondition parses one WHERE predicate:
//
//	attr | attr=value | attr!=value | attr<value ... | not(condition)
func (p *parser) parseCondition() (Condition, error) {
	if keywordIs(p.peek(), "not") {
		p.next()
		if !p.at(tokLParen) {
			return Condition{}, p.errf("expected '(' after NOT")
		}
		p.next()
		inner, err := p.parseCondition()
		if err != nil {
			return Condition{}, err
		}
		if !p.at(tokRParen) {
			return Condition{}, p.errf("expected ')' to close NOT(...)")
		}
		p.next()
		inner.Negate = !inner.Negate
		return inner, nil
	}
	attrName, err := p.expectLabel("attribute label")
	if err != nil {
		return Condition{}, err
	}
	cond := Condition{Attr: attrName, Op: CondExist}
	switch p.peek().kind {
	case tokEq:
		cond.Op = CondEq
	case tokNe:
		cond.Op = CondEq
		cond.Negate = true
	case tokLt:
		cond.Op = CondLt
	case tokLe:
		cond.Op = CondLe
	case tokGt:
		cond.Op = CondGt
	case tokGe:
		cond.Op = CondGe
	default:
		return cond, nil // bare existence test
	}
	p.next()
	vt := p.peek()
	if vt.kind != tokIdent && vt.kind != tokString && vt.kind != tokNumber {
		return Condition{}, p.errf("expected comparison value, got %s", vt.kind)
	}
	p.next()
	cond.Value = vt.text
	return cond, nil
}

func (p *parser) parseWhere(q *Query) error {
	for {
		cond, err := p.parseCondition()
		if err != nil {
			return err
		}
		q.Where = append(q.Where, cond)
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseOrderBy(q *Query) error {
	for {
		label, err := p.expectLabel("attribute label")
		if err != nil {
			return err
		}
		item := OrderItem{Label: label}
		if keywordIs(p.peek(), "desc") {
			item.Descending = true
			p.next()
		} else if keywordIs(p.peek(), "asc") {
			p.next()
		}
		q.OrderBy = append(q.OrderBy, item)
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

func (p *parser) parseFormat(q *Query) error {
	name, err := p.expectLabel("format name")
	if err != nil {
		return err
	}
	name = strings.ToLower(name)
	if !knownFormats[name] {
		return p.errf("unknown format %q", name)
	}
	q.Format.Kind = name
	return nil
}

func (p *parser) parseLimit(q *Query) error {
	t := p.peek()
	if t.kind != tokNumber {
		return p.errf("LIMIT requires a number, got %q", t.text)
	}
	p.next()
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return p.errf("LIMIT requires a non-negative integer, got %q", t.text)
	}
	q.Limit = n
	return nil
}

// parseLets parses "name = fn(args...)" definitions.
func (p *parser) parseLets(q *Query) error {
	for {
		name, err := p.expectLabel("derived attribute name")
		if err != nil {
			return err
		}
		if !p.at(tokEq) {
			return p.errf("expected '=' in LET definition")
		}
		p.next()
		fn, err := p.expectLabel("LET operator (scale, truncate, first)")
		if err != nil {
			return err
		}
		def := LetDef{Name: name}
		switch strings.ToLower(fn) {
		case "scale":
			def.Kind = LetScale
		case "truncate":
			def.Kind = LetTruncate
		case "first":
			def.Kind = LetFirst
		default:
			return p.errf("unknown LET operator %q", fn)
		}
		if !p.at(tokLParen) {
			return p.errf("expected '(' after %s", fn)
		}
		p.next()
		switch def.Kind {
		case LetScale, LetTruncate:
			label, err := p.expectLabel("attribute label")
			if err != nil {
				return err
			}
			def.Args = []string{label}
			if !p.at(tokComma) {
				return p.errf("%s(attr, factor) requires a numeric parameter", fn)
			}
			p.next()
			nt := p.peek()
			if nt.kind != tokNumber {
				return p.errf("%s factor must be a number, got %q", fn, nt.text)
			}
			p.next()
			f, err := strconv.ParseFloat(nt.text, 64)
			if err != nil {
				return p.errf("bad number %q", nt.text)
			}
			if def.Kind == LetTruncate && f <= 0 {
				return p.errf("truncate step must be positive")
			}
			def.Factor = f
		case LetFirst:
			for {
				label, err := p.expectLabel("attribute label")
				if err != nil {
					return err
				}
				def.Args = append(def.Args, label)
				if !p.at(tokComma) {
					break
				}
				p.next()
			}
			if len(def.Args) == 0 {
				return p.errf("first() requires at least one attribute")
			}
		}
		if !p.at(tokRParen) {
			return p.errf("expected ')' to close %s(...)", fn)
		}
		p.next()
		q.Lets = append(q.Lets, def)
		if !p.at(tokComma) {
			return nil
		}
		p.next()
	}
}

// validate performs semantic checks after parsing, and normalizes
// post-aggregation operators: percent_total(x)/ratio(x,y) over an
// aggregating query implicitly add sum(x)/sum(y) reductions when no
// operator already produces the referenced columns.
func validate(q *Query) error {
	if len(q.PostOps) > 0 {
		produced := map[string]bool{}
		for _, o := range q.Ops {
			produced[o.ResultName()] = true
		}
		ensure := func(target string) {
			if target == "" || produced[target] || produced["sum#"+target] {
				return
			}
			// only add an implicit reduction when the query aggregates;
			// non-aggregating queries read the column off raw rows
			if len(q.Ops) == 0 && len(q.GroupBy) == 0 {
				return
			}
			spec := core.OpSpec{Kind: core.OpSum, Target: target}
			q.Ops = append(q.Ops, spec)
			produced[spec.ResultName()] = true
		}
		for _, po := range q.PostOps {
			ensure(po.Target)
			ensure(po.Target2)
		}
	}
	if len(q.GroupBy) > 0 && len(q.Ops) == 0 {
		return fmt.Errorf("calql: GROUP BY requires an AGGREGATE clause")
	}
	if len(q.Ops) > 0 {
		if _, err := core.NewScheme(q.GroupBy, q.Ops); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, l := range q.Lets {
		if seen[l.Name] {
			return fmt.Errorf("calql: duplicate LET definition %q", l.Name)
		}
		seen[l.Name] = true
	}
	// When aggregating, projection labels must refer to key attributes,
	// result names, or LET-derived names.
	if len(q.Ops) > 0 && len(q.Select) > 0 {
		valid := map[string]bool{}
		for _, k := range q.GroupBy {
			valid[k] = true
		}
		for _, o := range q.Ops {
			valid[o.ResultName()] = true
		}
		for _, po := range q.PostOps {
			valid[po.ResultName()] = true
		}
		for _, l := range q.Lets {
			valid[l.Name] = true
		}
		for _, s := range q.Select {
			if s.Star {
				continue
			}
			if !valid[s.Label] {
				return fmt.Errorf("calql: SELECT %q: not a key attribute or aggregation result of this query", s.Label)
			}
		}
	}
	return nil
}
