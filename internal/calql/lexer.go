// Package calql implements the aggregation description language of
// Section III-B: a small SQL-like language with AGGREGATE, GROUP BY,
// WHERE, SELECT, FORMAT, ORDER BY, LIMIT, and LET clauses, used to
// configure both on-line and off-line aggregation.
//
// Examples from the paper:
//
//	AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
//	AGGREGATE sum(time.duration) WHERE not(mpi.function)
//	    GROUP BY amr.level, iteration#mainloop
package calql

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // quoted
	tokComma
	tokLParen
	tokRParen
	tokStar
	tokEq // =
	tokNe // !=
	tokLt // <
	tokLe // <=
	tokGt // >
	tokGe // >=
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokComma:
		return "','"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokStar:
		return "'*'"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	}
	return "token"
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	pos  int
}

// isIdentRune reports whether r may appear inside an attribute label.
// Labels are liberal: the paper uses dots ("time.duration"), hashes
// ("iteration#mainloop", "sum#time"), and colons can appear in
// user-defined names.
func isIdentRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '.', r == '_', r == '#', r == ':', r == '-', r == '/', r == '@':
		return true
	}
	return false
}

// lex splits the input into tokens. A backslash before a newline is a line
// continuation (the paper wraps long schemes with '\').
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\\': // line continuation
			i++
			for i < n && (input[i] == ' ' || input[i] == '\t') {
				i++
			}
			if i < n && (input[i] == '\n' || input[i] == '\r') {
				i++
			}
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokNe, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("calql: offset %d: unexpected '!'", i)
			}
		case c == '<':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokLe, "<=", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokGe, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\\' && j+1 < n {
					sb.WriteByte(input[j+1])
					j += 2
					continue
				}
				if input[j] == quote {
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("calql: offset %d: unterminated string", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i + 1
			for j < n && (input[j] >= '0' && input[j] <= '9' || input[j] == '.' ||
				input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			// a number immediately followed by identifier runes is really a
			// label starting with digits (e.g. "2d.kernel")
			if j < n && isIdentRune(rune(input[j])) && input[j] != '.' {
				for j < n && isIdentRune(rune(input[j])) {
					j++
				}
				toks = append(toks, token{tokIdent, input[i:j], i})
			} else {
				toks = append(toks, token{tokNumber, input[i:j], i})
			}
			i = j
		case isIdentRune(rune(c)):
			j := i
			for j < n && isIdentRune(rune(input[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, input[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("calql: offset %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// keywordIs reports whether a token is the given keyword
// (case-insensitive identifier match).
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
