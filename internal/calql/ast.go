package calql

import (
	"fmt"
	"strconv"
	"strings"

	"caligo/internal/core"
)

// ExplainMode says whether (and how) a query is an EXPLAIN statement.
type ExplainMode uint8

const (
	// ExplainNone marks an ordinary query.
	ExplainNone ExplainMode = iota
	// ExplainPlan (`EXPLAIN <query>`) prints the resolved execution plan
	// without running the query.
	ExplainPlan
	// ExplainAnalyze (`EXPLAIN ANALYZE <query>`) runs the query and
	// annotates each plan node with measured time, records, and bytes.
	ExplainAnalyze
)

func (m ExplainMode) String() string {
	switch m {
	case ExplainPlan:
		return "EXPLAIN"
	case ExplainAnalyze:
		return "EXPLAIN ANALYZE"
	}
	return ""
}

// Query is the parsed form of an aggregation / analysis query.
type Query struct {
	// Explain marks EXPLAIN / EXPLAIN ANALYZE statements; the wrapped
	// query is the rest of the struct.
	Explain ExplainMode
	// Lets lists value-preprocessing definitions, applied to each input
	// record before filtering and aggregation.
	Lets []LetDef
	// Select lists the projection, in order. Empty means "all attributes".
	Select []SelectItem
	// Ops lists the reduction operator instances (from AGGREGATE and from
	// operator calls inside SELECT).
	Ops []core.OpSpec
	// PostOps lists post-aggregation computations (percent_total, ratio)
	// evaluated over the result rows.
	PostOps []PostOp
	// GroupBy lists the aggregation key attribute labels.
	GroupBy []string
	// Where lists filter conditions; all must hold (comma means AND).
	Where []Condition
	// OrderBy lists sort keys applied to the output.
	OrderBy []OrderItem
	// Format selects the output formatter (default "table").
	Format FormatSpec
	// Limit caps the number of output records; <0 means unlimited.
	Limit int
}

// PostOpKind enumerates post-aggregation operators: computations over the
// completed result set rather than streaming reductions.
type PostOpKind uint8

const (
	// PostPercentTotal reports each row's share of the column total,
	// in percent: 100 * sum#x(row) / Σ sum#x(rows).
	PostPercentTotal PostOpKind = iota
	// PostRatio reports sum#x(row) / sum#y(row) per row.
	PostRatio
)

func (k PostOpKind) String() string {
	switch k {
	case PostPercentTotal:
		return "percent_total"
	case PostRatio:
		return "ratio"
	}
	return "post-op"
}

// PostOp is one post-aggregation computation.
type PostOp struct {
	Kind    PostOpKind
	Target  string // numerator attribute
	Target2 string // denominator attribute (ratio only)
	Alias   string
}

// ResultName returns the output label of the computation.
func (p PostOp) ResultName() string {
	if p.Alias != "" {
		return p.Alias
	}
	switch p.Kind {
	case PostPercentTotal:
		return "percent_total#" + p.Target
	case PostRatio:
		return "ratio#" + p.Target + "/" + p.Target2
	}
	return "post#" + p.Target
}

// String renders the post-op in query syntax.
func (p PostOp) String() string {
	var s string
	switch p.Kind {
	case PostPercentTotal:
		s = "percent_total(" + quoteIfNeeded(p.Target) + ")"
	case PostRatio:
		s = "ratio(" + quoteIfNeeded(p.Target) + "," + quoteIfNeeded(p.Target2) + ")"
	}
	if p.Alias != "" {
		s += " AS " + quoteIfNeeded(p.Alias)
	}
	return s
}

// SelectItem is one projection element.
type SelectItem struct {
	Star  bool   // '*'
	Label string // attribute label (or operator result label)
	Alias string // output rename, from AS
}

// DisplayName returns the column header for the item.
func (s SelectItem) DisplayName() string {
	if s.Alias != "" {
		return s.Alias
	}
	return s.Label
}

// CondOp enumerates filter comparison operators.
type CondOp uint8

const (
	// CondExist is true when the attribute is present in the record.
	CondExist CondOp = iota
	// CondEq compares for equality against Value.
	CondEq
	// CondLt, CondLe, CondGt, CondGe compare ordering against Value.
	CondLt
	CondLe
	CondGt
	CondGe
)

func (c CondOp) String() string {
	switch c {
	case CondExist:
		return ""
	case CondEq:
		return "="
	case CondLt:
		return "<"
	case CondLe:
		return "<="
	case CondGt:
		return ">"
	case CondGe:
		return ">="
	}
	return "?"
}

// Condition is one WHERE predicate over an attribute.
type Condition struct {
	Attr   string
	Op     CondOp
	Value  string
	Negate bool // NOT(...) or !=
}

// String renders the condition in query syntax.
func (c Condition) String() string {
	var inner string
	if c.Op == CondExist {
		inner = quoteIfNeeded(c.Attr)
	} else if c.Op == CondEq && c.Negate {
		return quoteIfNeeded(c.Attr) + "!=" + quoteValue(c.Value)
	} else {
		inner = quoteIfNeeded(c.Attr) + c.Op.String() + quoteValue(c.Value)
	}
	if c.Negate {
		return "not(" + inner + ")"
	}
	return inner
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Label      string
	Descending bool
}

// String renders the item in query syntax.
func (o OrderItem) String() string {
	if o.Descending {
		return quoteIfNeeded(o.Label) + " DESC"
	}
	return quoteIfNeeded(o.Label)
}

// FormatSpec selects and parameterizes the output formatter.
type FormatSpec struct {
	Kind string // "table", "csv", "json", "tree", "cali" (empty = table)
}

// LetKind enumerates preprocessing operators usable in LET.
type LetKind uint8

const (
	// LetScale multiplies a numeric attribute by a constant factor.
	LetScale LetKind = iota
	// LetTruncate rounds a numeric attribute down to a multiple of a step.
	LetTruncate
	// LetFirst takes the first present attribute of a list (coalesce).
	LetFirst
)

func (k LetKind) String() string {
	switch k {
	case LetScale:
		return "scale"
	case LetTruncate:
		return "truncate"
	case LetFirst:
		return "first"
	}
	return "let-op"
}

// LetDef defines a derived attribute computed per input record.
type LetDef struct {
	Name   string // the derived attribute's label
	Kind   LetKind
	Args   []string // attribute labels
	Factor float64  // scale factor / truncate step
}

// String renders the definition in query syntax.
func (l LetDef) String() string {
	switch l.Kind {
	case LetScale, LetTruncate:
		return fmt.Sprintf("%s = %s(%s,%s)", quoteIfNeeded(l.Name), l.Kind,
			quoteIfNeeded(l.Args[0]), strconv.FormatFloat(l.Factor, 'g', -1, 64))
	default:
		args := make([]string, len(l.Args))
		for i, a := range l.Args {
			args[i] = quoteIfNeeded(a)
		}
		return fmt.Sprintf("%s = %s(%s)", quoteIfNeeded(l.Name), l.Kind, strings.Join(args, ","))
	}
}

// String renders the whole query in canonical form. Parsing the result
// yields an equivalent query (round-trip property, checked by tests).
func (q *Query) String() string {
	var parts []string
	if q.Explain != ExplainNone {
		parts = append(parts, q.Explain.String())
	}
	if len(q.Lets) > 0 {
		defs := make([]string, len(q.Lets))
		for i, l := range q.Lets {
			defs[i] = l.String()
		}
		parts = append(parts, "LET "+strings.Join(defs, ", "))
	}
	if len(q.Select) > 0 {
		items := make([]string, len(q.Select))
		for i, s := range q.Select {
			switch {
			case s.Star:
				items[i] = "*"
			case s.Alias != "":
				items[i] = quoteIfNeeded(s.Label) + " AS " + quoteIfNeeded(s.Alias)
			default:
				items[i] = quoteIfNeeded(s.Label)
			}
		}
		parts = append(parts, "SELECT "+strings.Join(items, ", "))
	}
	if len(q.Ops) > 0 || len(q.PostOps) > 0 {
		var items []string
		for _, o := range q.Ops {
			items = append(items, o.String())
		}
		for _, p := range q.PostOps {
			items = append(items, p.String())
		}
		parts = append(parts, "AGGREGATE "+strings.Join(items, ", "))
	}
	if len(q.Where) > 0 {
		items := make([]string, len(q.Where))
		for i, c := range q.Where {
			items[i] = c.String()
		}
		parts = append(parts, "WHERE "+strings.Join(items, ", "))
	}
	if len(q.GroupBy) > 0 {
		keys := make([]string, len(q.GroupBy))
		for i, k := range q.GroupBy {
			keys[i] = quoteIfNeeded(k)
		}
		parts = append(parts, "GROUP BY "+strings.Join(keys, ", "))
	}
	if len(q.OrderBy) > 0 {
		items := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			items[i] = o.String()
		}
		parts = append(parts, "ORDER BY "+strings.Join(items, ", "))
	}
	if q.Format.Kind != "" {
		parts = append(parts, "FORMAT "+q.Format.Kind)
	}
	if q.Limit >= 0 {
		parts = append(parts, "LIMIT "+strconv.Itoa(q.Limit))
	}
	return strings.Join(parts, " ")
}

// Scheme extracts the aggregation scheme (key + operators) from the query.
// Returns nil when the query performs no aggregation.
func (q *Query) Scheme() (*core.Scheme, error) {
	if len(q.Ops) == 0 {
		if len(q.GroupBy) > 0 {
			return nil, fmt.Errorf("calql: GROUP BY without aggregation operators")
		}
		return nil, nil
	}
	return core.NewScheme(q.GroupBy, q.Ops)
}

// HasAggregation reports whether the query performs aggregation.
func (q *Query) HasAggregation() bool { return len(q.Ops) > 0 }

// WithoutExplain returns a copy of the query with the EXPLAIN prefix
// stripped — the query an EXPLAIN statement asks about.
func (q *Query) WithoutExplain() *Query {
	inner := *q
	inner.Explain = ExplainNone
	return &inner
}

// quoteRaw wraps s in double quotes, escaping only backslash and the
// quote character — exactly the escapes the lexer understands, so any
// byte sequence round-trips (including raw newlines and non-UTF-8).
func quoteRaw(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('"')
	return sb.String()
}

// quoteValue quotes a comparison value unless it lexes back as a single
// identifier or number token (both are valid value positions).
func quoteValue(s string) string {
	if s == "" {
		return `""`
	}
	toks, err := lex(s)
	if err == nil && len(toks) == 2 && toks[0].text == s &&
		(toks[0].kind == tokIdent || toks[0].kind == tokNumber) {
		return s
	}
	return quoteRaw(s)
}

// quoteIfNeeded quotes a label or value that would not lex back as a
// single identifier (characters outside the identifier set, or text the
// lexer reads as a number).
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	toks, err := lex(s)
	if err == nil && len(toks) == 2 && toks[0].kind == tokIdent && toks[0].text == s {
		return s
	}
	return quoteRaw(s)
}
