package telemetry

import (
	"math"
	"strings"
	"testing"
)

// withEnabled runs the test with the kill switch in the given state and
// restores the previous state afterwards.
func withEnabled(t *testing.T, on bool) {
	t.Helper()
	prev := SetEnabled(on)
	t.Cleanup(func() { SetEnabled(prev) })
}

func TestKillSwitch(t *testing.T) {
	withEnabled(t, false)
	r := NewRegistry()
	c := r.Counter("test.counter")
	g := r.Gauge("test.gauge")
	h := r.Histogram("test.hist")

	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(3)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled telemetry recorded: counter=%d gauge=%d hist=%d",
			c.Value(), g.Value(), h.Count())
	}

	SetEnabled(true)
	c.Inc()
	c.Add(10)
	g.Set(5)
	g.Add(3)
	h.Observe(100)
	if c.Value() != 11 {
		t.Errorf("counter = %d, want 11", c.Value())
	}
	if g.Value() != 8 {
		t.Errorf("gauge = %d, want 8", g.Value())
	}
	if h.Count() != 1 || h.Sum() != 100 {
		t.Errorf("hist count=%d sum=%d, want 1/100", h.Count(), h.Sum())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("x") != r.Gauge("x") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Error("Histogram not idempotent")
	}
}

func TestRegistryExportSortedAndReset(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("m.gauge").Set(-7)
	r.Histogram("z.hist").Observe(42)

	ms := r.Export()
	if len(ms) != 4 {
		t.Fatalf("exported %d metrics, want 4", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Name > ms[i].Name {
			t.Errorf("export not sorted: %q before %q", ms[i-1].Name, ms[i].Name)
		}
	}
	if ms[0].Name != "a.count" || ms[0].Counter != 1 {
		t.Errorf("first metric = %+v, want a.count=1", ms[0])
	}

	r.Reset()
	for _, m := range r.Export() {
		if m.Counter != 0 || m.Gauge != 0 || m.Hist.Count != 0 {
			t.Errorf("metric %q not zeroed after Reset: %+v", m.Name, m)
		}
	}
}

func TestWriteReport(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	r.Counter("caligo.test.records").Add(7)
	r.Histogram("caligo.test.ns").Observe(1000)
	var sb strings.Builder
	if err := r.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"caligo.test.records", "7", "caligo.test.ns", "count=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExportMap(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	r.Counter("c").Add(3)
	r.Histogram("h").Observe(10)
	m := r.ExportMap()
	if m["c"] != uint64(3) {
		t.Errorf("c = %v, want 3", m["c"])
	}
	hm, ok := m["h"].(map[string]any)
	if !ok || hm["count"] != uint64(1) {
		t.Errorf("h = %v, want histogram map with count 1", m["h"])
	}
}

// TestDisabledPathAllocs proves the kill-switch path allocates nothing —
// the property that makes always-present instrumentation safe on hot
// paths.
func TestDisabledPathAllocs(t *testing.T) {
	withEnabled(t, false)
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	g := r.Gauge("alloc.gauge")
	h := r.Histogram("alloc.hist")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(123)
	}); n != 0 {
		t.Errorf("disabled mutators allocate %v allocs/op, want 0", n)
	}
}

// TestEnabledPathAllocs proves the enabled path is allocation-free too:
// bins are preallocated, counters are plain atomics.
func TestEnabledPathAllocs(t *testing.T) {
	withEnabled(t, true)
	r := NewRegistry()
	c := r.Counter("alloc.counter")
	h := r.Histogram("alloc.hist")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(123456)
	}); n != 0 {
		t.Errorf("enabled mutators allocate %v allocs/op, want 0", n)
	}
}

func TestQuantileAndMean(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("q")
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs .. 1ms
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	p50 := s.Quantile(0.5)
	// log-linear bins with 8 sub-bins: relative error bound 12.5% + bin
	// midpoint rounding; allow 20%.
	if p50 < 400e3 || p50 > 620e3 {
		t.Errorf("p50 = %g, want ≈ 500000", p50)
	}
	mean := s.Mean()
	if mean < 490e3 || mean > 511e3 {
		t.Errorf("mean = %g, want ≈ 500500", mean)
	}
	max := s.Max()
	if max < 1e6 || max > 1.2e6 {
		t.Errorf("max = %g, want ≈ 1e6 (bin upper bound)", max)
	}
	if q := s.Quantile(0); q <= 0 {
		t.Errorf("q0 = %g, want > 0 (all observations positive)", q)
	}
	if q := s.Quantile(1); q < max/1.2 {
		t.Errorf("q1 = %g, want near max %g", q, max)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Error("empty snapshot should report zeros")
	}
}

func TestHistogramMonotoneBins(t *testing.T) {
	// bin index must be monotone in the value, and bounds must bracket it
	prev := 0
	for _, v := range []int64{1, 2, 3, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20,
		1<<40 + 12345, 1 << 62, math.MaxInt64} {
		i := binIndex(v)
		if i < prev {
			t.Errorf("binIndex(%d) = %d < previous %d (not monotone)", v, i, prev)
		}
		prev = i
		// float64(MaxInt64) rounds up to exactly 2^63, the exclusive upper
		// bound of the last regular bin; compare in integer space instead
		lo, hi := binLower(i), binUpper(i)
		if float64(v) < lo || (float64(v) >= hi && v != math.MaxInt64) {
			t.Errorf("value %d outside its bin [%g, %g)", v, lo, hi)
		}
	}
}
