// Package telemetry is the library's self-instrumentation layer: a
// stdlib-only, allocation-free-on-the-hot-path metrics library the
// profiler uses to observe itself. The paper's pitch is that flexible
// aggregation makes performance introspection cheap enough to leave on in
// production; this package applies the same standard to the profiler —
// every subsystem (snapshot engine, aggregation core, stream format,
// reduction network, parallel query) exposes counters and latency
// histograms through a process-global named-metric registry.
//
// Design constraints:
//
//   - The disabled path is a single atomic load. All mutators (Counter.Add,
//     Gauge.Set, Histogram.Observe) first check the package kill switch and
//     return immediately when telemetry is off, so instrumented hot paths
//     (snapshot take, aggregation-DB update) pay one atomic.Bool load and a
//     predictable branch — nothing else, and zero allocations.
//   - The enabled path is also allocation-free: counters and gauges are
//     single atomics, histogram bins are preallocated atomic arrays.
//   - Histograms are mergeable log-linear latency histograms in the style
//     of Circonus's circllhist (arXiv:2001.06561): bin-wise merge is
//     associative and commutative, so per-thread or per-process histograms
//     combine exactly like the aggregation core's databases. They are
//     deliberately coarser than internal/core's fixed-range histogram
//     operator: a fixed relative error (≤ 1/8 per bin) over the full
//     positive int64 range, with no configuration.
//
// Metrics surface three ways: the caliper "metrics" runtime service
// flushes them as ordinary snapshot records (queryable with CalQL — the
// dogfooded channel), caliper.ServeDebug exposes them over expvar/HTTP,
// and the cali-query / cali-stat commands print a post-run report with
// -stats. See docs/OBSERVABILITY.md for the metric name catalogue.
package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// enabled is the package-level kill switch. Checking it is the entire
// cost of an instrumented hot path when telemetry is off.
var enabled atomic.Bool

// Enabled reports whether telemetry collection is on. Instrumented code
// that must do extra work to produce an observation (e.g. read a clock)
// should gate on this before computing the value.
func Enabled() bool { return enabled.Load() }

// Enable turns telemetry collection on.
func Enable() { enabled.Store(true) }

// Disable turns telemetry collection off. Recorded values are retained
// and remain readable.
func Disable() { enabled.Store(false) }

// SetEnabled sets the kill switch and returns the previous state, for
// scoped enablement in tests and tools.
func SetEnabled(on bool) (previous bool) { return enabled.Swap(on) }

// Kind discriminates metric types in exports.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the kind name used in reports.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is a monotonically increasing event counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() {
	if !enabled.Load() {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Reads work regardless of the kill
// switch.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (e.g. a current size).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a thread-safe named-metric table. Metric creation is
// idempotent per (kind, name): asking for an existing name returns the
// existing metric, so packages can declare their metrics independently
// with package-level variables.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// defaultRegistry is the process-global registry all instrumentation in
// this repository records into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(name)
		r.hists[name] = h
	}
	return h
}

// NewCounter returns the named counter in the default registry.
func NewCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// NewGauge returns the named gauge in the default registry.
func NewGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// NewHistogram returns the named histogram in the default registry.
func NewHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Reset zeroes every registered metric. Metrics stay registered (the
// pointers held by instrumented packages remain valid). Intended for
// tests and per-run reporting in tools.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Metric is one exported metric value. Exactly one of the value fields is
// meaningful, selected by Kind.
type Metric struct {
	Name    string
	Kind    Kind
	Counter uint64            // KindCounter
	Gauge   int64             // KindGauge
	Hist    HistogramSnapshot // KindHistogram
}

// Export returns a point-in-time copy of every registered metric, sorted
// by name (counters and gauges before histograms on name ties).
func (r *Registry) Export() []Metric { return r.ExportInto(nil) }

// ExportInto is Export appending into dst (reusing its backing array), so
// steady-state scrapers — the OpenMetrics exporter scraped every few
// seconds — can read the registry without allocating once dst has grown
// to the registered-metric count.
func (r *Registry) ExportInto(dst []Metric) []Metric {
	r.mu.RLock()
	out := dst[:0]
	if cap(out) == 0 {
		out = make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	}
	for _, c := range r.counters {
		out = append(out, Metric{Name: c.name, Kind: KindCounter, Counter: c.Value()})
	}
	for _, g := range r.gauges {
		out = append(out, Metric{Name: g.name, Kind: KindGauge, Gauge: g.Value()})
	}
	for _, h := range r.hists {
		out = append(out, Metric{Name: h.name, Kind: KindHistogram, Hist: h.Snapshot()})
	}
	r.mu.RUnlock()
	sortMetrics(out)
	return out
}

// sortMetrics orders metrics by (name, kind). Hand-written insertion sort
// rather than sort.Slice: the registry holds tens of metrics, map
// iteration order randomizes the input every export, and the reflection
// and closure machinery of the sort package allocates — this keeps the
// scrape path allocation-free for the OpenMetrics exporter.
func sortMetrics(m []Metric) {
	for i := 1; i < len(m); i++ {
		for j := i; j > 0 && metricLess(&m[j], &m[j-1]); j-- {
			m[j], m[j-1] = m[j-1], m[j]
		}
	}
}

func metricLess(a, b *Metric) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Kind < b.Kind
}

// ExportMap renders the registry as a JSON-encodable map, for expvar.
// Histograms export their summary statistics.
func (r *Registry) ExportMap() map[string]any {
	out := map[string]any{}
	for _, m := range r.Export() {
		switch m.Kind {
		case KindCounter:
			out[m.Name] = m.Counter
		case KindGauge:
			out[m.Name] = m.Gauge
		case KindHistogram:
			out[m.Name] = map[string]any{
				"count": m.Hist.Count,
				"sum":   m.Hist.Sum,
				"avg":   m.Hist.Mean(),
				"p50":   m.Hist.Quantile(0.50),
				"p95":   m.Hist.Quantile(0.95),
				"p99":   m.Hist.Quantile(0.99),
				"max":   m.Hist.Max(),
			}
		}
	}
	return out
}

// WriteReport writes a human-readable dump of every registered metric —
// the post-run report the -stats flags of cali-query and cali-stat print.
func (r *Registry) WriteReport(w io.Writer) error {
	metrics := r.Export()
	if _, err := fmt.Fprintf(w, "internal telemetry (%d metrics, collection enabled=%v):\n",
		len(metrics), Enabled()); err != nil {
		return err
	}
	for _, m := range metrics {
		var err error
		switch m.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "  %-44s %12d\n", m.Name, m.Counter)
		case KindGauge:
			_, err = fmt.Fprintf(w, "  %-44s %12d\n", m.Name, m.Gauge)
		case KindHistogram:
			_, err = fmt.Fprintf(w,
				"  %-44s count=%d sum=%d avg=%.0f p50=%.0f p95=%.0f p99=%.0f max=%.0f\n",
				m.Name, m.Hist.Count, m.Hist.Sum, m.Hist.Mean(),
				m.Hist.Quantile(0.50), m.Hist.Quantile(0.95),
				m.Hist.Quantile(0.99), m.Hist.Max())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteReport writes the default registry's report.
func WriteReport(w io.Writer) error { return defaultRegistry.WriteReport(w) }

// Reset zeroes every metric in the default registry.
func Reset() { defaultRegistry.Reset() }

// Export returns the default registry's metrics.
func Export() []Metric { return defaultRegistry.Export() }

// ExportMap returns the default registry's metrics as an expvar-friendly map.
func ExportMap() map[string]any { return defaultRegistry.ExportMap() }
