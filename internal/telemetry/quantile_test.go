package telemetry

import (
	"math"
	"testing"
)

// Table-driven audit of HistogramSnapshot.Quantile at the exact edges
// (q=0, q=1), for single-bucket histograms, and across bin boundaries.
// These pin the contract:
//
//   - q=0 reports the inclusive lower bound of the first populated bin,
//   - q=1 reports the exclusive upper bound of the last populated bin
//     (identical to Max),
//   - interior quantiles interpolate linearly inside the bin holding the
//     continuous rank q·count, so they never land a whole bin off,
//   - the bottom (≤ 0) bin always reports 0 and the overflow bin +Inf.
func TestQuantileEdgesTable(t *testing.T) {
	withEnabled(t, true)

	// bin bounds used by the expectations below
	lo := func(v int64) float64 { return binLower(binIndex(v)) }
	hi := func(v int64) float64 { return binUpper(binIndex(v)) }
	mid := func(v int64) float64 { return (lo(v) + hi(v)) / 2 }

	tests := []struct {
		name string
		obs  []int64
		q    float64
		want float64
	}{
		// Empty histogram: every quantile is 0.
		{"empty q0", nil, 0, 0},
		{"empty q1", nil, 1, 0},
		{"empty p50", nil, 0.5, 0},

		// Single observation = single-bucket histogram: q sweeps the
		// bin's [lower, upper) range, with the midpoint at p50.
		{"single q0", []int64{100}, 0, lo(100)},
		{"single p50", []int64{100}, 0.5, mid(100)},
		{"single q1", []int64{100}, 1, hi(100)},

		// Many observations in one bucket behave identically: the edges
		// stay pinned to the bin bounds, not the midpoint.
		{"single-bucket q0", []int64{64, 64, 64, 64}, 0, lo(64)},
		{"single-bucket p50", []int64{64, 64, 64, 64}, 0.5, mid(64)},
		{"single-bucket q1", []int64{64, 64, 64, 64}, 1, hi(64)},

		// Out-of-range q clamps to the edges.
		{"q<0 clamps", []int64{100}, -0.5, lo(100)},
		{"q>1 clamps", []int64{100}, 1.5, hi(100)},

		// Two buckets, equal weight: p50 is exactly the shared boundary
		// (rank 1.0 of 2 exhausts the lower bin), not the lower bin's
		// midpoint — the off-by-one-bucket interpolation this test pins.
		{"two-bucket p50 at boundary", []int64{1, 2}, 0.5, hi(1)},
		{"two-bucket q0", []int64{1, 2}, 0, lo(1)},
		{"two-bucket q1", []int64{1, 2}, 1, hi(2)},
		// p25 is the midpoint of the lower bin, p75 of the upper.
		{"two-bucket p25", []int64{1, 2}, 0.25, mid(1)},
		{"two-bucket p75", []int64{1, 2}, 0.75, mid(2)},

		// Bottom bin: zero and negative observations report 0 at every q.
		{"zero-bin q0", []int64{0, -5}, 0, 0},
		{"zero-bin p50", []int64{0, -5}, 0.5, 0},
		{"zero-bin q1", []int64{0, -5}, 1, 0},

		// Mixed bottom bin + regular bin: q=0 hits the bottom bin (0),
		// q=1 the regular bin's upper bound.
		{"mixed q0", []int64{-1, 100}, 0, 0},
		{"mixed q1", []int64{-1, 100}, 1, hi(100)},

		// MaxInt64 lands in the last regular bin, not overflow.
		{"maxint q1", []int64{math.MaxInt64}, 1, binUpper(overflowBin - 1)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			h := observeAll(tc.obs)
			if got := h.Snapshot().Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%g) over %v = %g, want %g", tc.q, tc.obs, got, tc.want)
			}
		})
	}
}

// TestQuantileOverflowEdges pins the overflow bin (float observations
// ≥ 2⁶³) to +Inf at every quantile that reaches it.
func TestQuantileOverflowEdges(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("edge")
	h.ObserveFloat(math.Inf(1))
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); !math.IsInf(got, 1) {
			t.Errorf("Quantile(%g) over overflow-only = %g, want +Inf", q, got)
		}
	}
	// overflow mixed with a regular bin: q=0 stays finite
	h.Observe(10)
	s = h.Snapshot()
	if got := s.Quantile(0); math.IsInf(got, 1) {
		t.Errorf("Quantile(0) with finite min = %g, want finite", got)
	}
	if got := s.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("Quantile(1) with overflow max = %g, want +Inf", got)
	}
}

// TestQuantileMatchesMaxAtOne: q=1 and Max agree on every shape.
func TestQuantileMatchesMaxAtOne(t *testing.T) {
	withEnabled(t, true)
	shapes := [][]int64{
		{}, {0}, {1}, {5, 5, 5}, {1, 1000, 1 << 40}, {-3, 7}, {math.MaxInt64},
	}
	for _, obs := range shapes {
		s := observeAll(obs).Snapshot()
		if q1, max := s.Quantile(1), s.Max(); q1 != max {
			t.Errorf("obs %v: Quantile(1)=%g != Max()=%g", obs, q1, max)
		}
	}
}

// TestQuantileMonotone: quantiles are non-decreasing in q, and the
// interpolated estimate never leaves the bounds of the populated bins.
func TestQuantileMonotone(t *testing.T) {
	withEnabled(t, true)
	h := observeAll([]int64{3, 17, 17, 90, 1024, 1025, 70000})
	s := h.Snapshot()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := s.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%g gave %g after %g", q, v, prev)
		}
		prev = v
	}
	if min, max := s.Quantile(0), s.Quantile(1); min < binLower(binIndex(3)) || max > binUpper(binIndex(70000)) {
		t.Errorf("edge quantiles [%g, %g] escape populated bins", min, max)
	}
}

// TestEachBucketCumulative: accumulating EachBucket counts in call order
// yields a valid cumulative series ending at Count, with strictly
// ascending upper bounds.
func TestEachBucketCumulative(t *testing.T) {
	withEnabled(t, true)
	h := observeAll([]int64{-2, 0, 1, 5, 5, 300, 1 << 50})
	s := h.Snapshot()
	var cum uint64
	prev := math.Inf(-1)
	calls := 0
	s.EachBucket(func(upper float64, count uint64) {
		if upper <= prev {
			t.Errorf("bucket upper bounds not ascending: %g after %g", upper, prev)
		}
		prev = upper
		cum += count
		calls++
	})
	if cum != s.Count {
		t.Errorf("cumulative bucket count %d != Count %d", cum, s.Count)
	}
	if calls == 0 {
		t.Error("EachBucket made no calls over a populated histogram")
	}
	// the ≤0 bin must have been reported with upper bound 0
	found := false
	s.EachBucket(func(upper float64, _ uint64) {
		if upper == 0 {
			found = true
		}
	})
	if !found {
		t.Error("EachBucket did not report the bottom bin as upper bound 0")
	}
}
