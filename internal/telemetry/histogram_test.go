package telemetry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// observeAll records a value list into a fresh histogram.
func observeAll(vals []int64) *Histogram {
	h := newHistogram("prop")
	for _, v := range vals {
		h.Observe(v)
	}
	return h
}

// TestQuickMergeEqualsConcat mirrors the aggregation core's central
// correctness property (TestQuickMergeEqualsConcat in internal/core):
// merging histograms built from split observation streams must equal the
// histogram built from the concatenated stream.
func TestQuickMergeEqualsConcat(t *testing.T) {
	withEnabled(t, true)
	f := func(a, b []int64) bool {
		ha := observeAll(a)
		hb := observeAll(b)
		ha.Merge(hb)
		concat := observeAll(append(append([]int64{}, a...), b...))
		return ha.Snapshot() == concat.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeCommutative(t *testing.T) {
	withEnabled(t, true)
	f := func(a, b []int64) bool {
		ab := observeAll(a)
		ab.Merge(observeAll(b))
		ba := observeAll(b)
		ba.Merge(observeAll(a))
		return ab.Snapshot() == ba.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeAssociative(t *testing.T) {
	withEnabled(t, true)
	f := func(a, b, c []int64) bool {
		// (a ⊕ b) ⊕ c
		left := observeAll(a)
		left.Merge(observeAll(b))
		left.Merge(observeAll(c))
		// a ⊕ (b ⊕ c)
		bc := observeAll(b)
		bc.Merge(observeAll(c))
		right := observeAll(a)
		right.Merge(bc)
		return left.Snapshot() == right.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMergeManyWaysEquivalent splits one stream into k parts in random
// ways; every merge order must reproduce the single-histogram result
// (the property that makes per-thread and per-process histograms safe to
// combine, like core DB merging).
func TestMergeManyWaysEquivalent(t *testing.T) {
	withEnabled(t, true)
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = rng.Int63n(1 << 40)
	}
	want := observeAll(vals).Snapshot()
	for trial := 0; trial < 10; trial++ {
		k := 2 + rng.Intn(5)
		parts := make([]*Histogram, k)
		for i := range parts {
			parts[i] = newHistogram("part")
		}
		for _, v := range vals {
			parts[rng.Intn(k)].Observe(v)
		}
		merged := newHistogram("merged")
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.Snapshot() != want {
			t.Fatalf("trial %d: merged snapshot differs from direct observation", trial)
		}
	}
}

func TestBinEdgeZero(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("edge")
	h.Observe(0)
	s := h.Snapshot()
	if s.Bins[zeroBin] != 1 {
		t.Errorf("Observe(0): zero bin = %d, want 1", s.Bins[zeroBin])
	}
	if s.Count != 1 || s.Sum != 0 {
		t.Errorf("Observe(0): count=%d sum=%d", s.Count, s.Sum)
	}
	if q := s.Quantile(0.5); q != 0 {
		t.Errorf("quantile over zero bin = %g, want 0", q)
	}
}

func TestBinEdgeNegative(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("edge")
	h.Observe(-123)
	h.Observe(math.MinInt64)
	s := h.Snapshot()
	if s.Bins[zeroBin] != 2 {
		t.Errorf("negative observations: zero bin = %d, want 2", s.Bins[zeroBin])
	}
	if s.Count != 2 {
		t.Errorf("count = %d, want 2", s.Count)
	}
}

func TestBinEdgeInf(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("edge")
	h.ObserveFloat(math.Inf(1))
	h.ObserveFloat(math.Ldexp(1, 64)) // finite but > int64 range
	s := h.Snapshot()
	if s.Bins[overflowBin] != 2 {
		t.Errorf("+Inf/overflow: overflow bin = %d, want 2", s.Bins[overflowBin])
	}
	if !math.IsInf(s.Max(), 1) {
		t.Errorf("Max = %g, want +Inf", s.Max())
	}
	if !math.IsInf(s.Quantile(0.99), 1) {
		t.Errorf("p99 = %g, want +Inf", s.Quantile(0.99))
	}
}

func TestBinEdgeFloatSpecials(t *testing.T) {
	withEnabled(t, true)
	h := newHistogram("edge")
	h.ObserveFloat(math.NaN()) // ignored
	if h.Count() != 0 {
		t.Errorf("NaN recorded: count = %d", h.Count())
	}
	h.ObserveFloat(math.Inf(-1)) // bottom bin
	h.ObserveFloat(-1.5)         // bottom bin
	h.ObserveFloat(0.25)         // sub-1 positive: first positive bin
	s := h.Snapshot()
	if s.Bins[zeroBin] != 2 {
		t.Errorf("-Inf/-1.5: zero bin = %d, want 2", s.Bins[zeroBin])
	}
	if s.Bins[binIndex(1)] != 1 {
		t.Errorf("0.25: first positive bin = %d, want 1", s.Bins[binIndex(1)])
	}
}

func TestBinEdgePowersOfTwo(t *testing.T) {
	// 2^k is the first bin of octave k; 2^k - 1 the last of octave k-1.
	for k := 1; k <= 62; k++ {
		v := int64(1) << k
		i, j := binIndex(v), binIndex(v-1)
		if i != 1+k*subBuckets {
			t.Errorf("binIndex(2^%d) = %d, want %d", k, i, 1+k*subBuckets)
		}
		if j >= i {
			t.Errorf("binIndex(2^%d - 1) = %d, not below octave start %d", k, j, i)
		}
	}
	if binIndex(1) != 1 {
		t.Errorf("binIndex(1) = %d, want 1", binIndex(1))
	}
	if binIndex(math.MaxInt64) != overflowBin-1 {
		t.Errorf("binIndex(MaxInt64) = %d, want %d (last regular bin)",
			binIndex(math.MaxInt64), overflowBin-1)
	}
}

func TestRelativeErrorBound(t *testing.T) {
	// every positive value's bin midpoint is within 1/subBuckets of the
	// value (the log-linear guarantee)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10000; trial++ {
		v := rng.Int63()
		if v == 0 {
			continue
		}
		i := binIndex(v)
		mid := (binLower(i) + binUpper(i)) / 2
		if relErr := math.Abs(mid-float64(v)) / float64(v); relErr > 1.0/subBuckets {
			t.Fatalf("value %d: bin midpoint %g has relative error %g > %g",
				v, mid, relErr, 1.0/subBuckets)
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	h := newHistogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*977 + 13)
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	h := newHistogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*977 + 13)
	}
}
