package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bin layout. Positive values land in log-linear bins: the
// octave (floor log₂ v) selects a power-of-two range, split into
// subBuckets linear sub-bins — the circllhist construction with base 2
// instead of base 10, giving a worst-case relative error of
// 1/subBuckets per bin over the whole positive int64 range. Two special
// bins bracket the range: bin 0 collects zero and negative observations,
// and the last bin collects overflow (float observations ≥ 2⁶³,
// including +Inf).
const (
	subBits    = 3
	subBuckets = 1 << subBits // 8 linear sub-bins per octave
	octaves    = 63           // positive int64 exponents 0..62

	zeroBin     = 0
	overflowBin = 1 + octaves*subBuckets
	numBins     = overflowBin + 1
)

// Histogram is a mergeable log-linear latency histogram (values are
// conventionally nanoseconds, but any int64 magnitude works). All methods
// are safe for concurrent use; Observe is lock-free and allocation-free.
type Histogram struct {
	name  string
	count atomic.Uint64
	sum   atomic.Int64
	bins  []atomic.Uint64 // len numBins, allocated at construction
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, bins: make([]atomic.Uint64, numBins)}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// binIndex maps a value to its bin.
func binIndex(v int64) int {
	if v <= 0 {
		return zeroBin
	}
	u := uint64(v)
	e := uint(bits.Len64(u)) - 1
	d := u - 1<<e // offset within the octave, < 2^e
	var sub uint64
	if e <= subBits {
		sub = d << (subBits - e)
	} else {
		sub = d >> (e - subBits)
	}
	return 1 + int(e)*subBuckets + int(sub)
}

// binLower returns the inclusive lower bound of a bin.
func binLower(i int) float64 {
	if i <= zeroBin {
		return math.Inf(-1) // bin 0 holds everything ≤ 0
	}
	if i >= overflowBin {
		return math.Ldexp(1, 63)
	}
	k := i - 1
	e := k / subBuckets
	s := k % subBuckets
	w := math.Ldexp(1, e) // 2^e
	return w + float64(s)*w/subBuckets
}

// binUpper returns the exclusive upper bound of a bin.
func binUpper(i int) float64 {
	if i <= zeroBin {
		return 0
	}
	if i >= overflowBin {
		return math.Inf(1)
	}
	k := i - 1
	e := k / subBuckets
	s := k % subBuckets
	w := math.Ldexp(1, e)
	return w + float64(s+1)*w/subBuckets
}

// observe records v unconditionally (kill switch already checked).
func (h *Histogram) observe(v int64, bin int) {
	h.bins[bin].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Observe records one value. Zero and negative values count in the
// dedicated bottom bin (and still contribute to Count and Sum).
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v, binIndex(v))
}

// ObserveFloat records a float observation. NaN is ignored; +Inf and
// values ≥ 2⁶³ count in the overflow bin (contributing MaxInt64 to Sum);
// -Inf and values ≤ 0 count in the bottom bin; positive values below 1
// count in the first positive bin.
func (h *Histogram) ObserveFloat(f float64) {
	if !enabled.Load() {
		return
	}
	switch {
	case math.IsNaN(f):
		return
	case f >= math.Ldexp(1, 63):
		h.observe(math.MaxInt64, overflowBin)
	case f <= 0:
		v := int64(math.MinInt64)
		if f > math.MinInt64 {
			v = int64(f)
		}
		h.observe(v, zeroBin)
	case f < 1:
		h.observe(0, binIndex(1))
	default:
		h.observe(int64(f), binIndex(int64(f)))
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge folds other's observations into h, bin-wise. Merge is associative
// and commutative (bin-wise addition), mirroring the aggregation core's
// database merge, and is not gated by the kill switch: it operates on
// already-recorded data. other is left unchanged.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.bins {
		if n := other.bins[i].Load(); n != 0 {
			h.bins[i].Add(n)
		}
	}
	if n := other.count.Load(); n != 0 {
		h.count.Add(n)
	}
	if s := other.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
}

// reset zeroes all state.
func (h *Histogram) reset() {
	for i := range h.bins {
		h.bins[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// without synchronization. Two snapshots are equal (==-comparable) iff
// their bin contents, counts, and sums are equal.
type HistogramSnapshot struct {
	Count uint64
	Sum   int64
	Bins  [numBins]uint64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between bin reads; the snapshot is internally consistent enough
// for reporting (counts never exceed what was observed).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.bins {
		s.Bins[i] = h.bins[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bins: the
// midpoint of the bin containing the rank-⌈q·count⌉ observation. Returns
// 0 for empty histograms, 0 for observations in the bottom (≤ 0) bin, and
// +Inf for the overflow bin.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < numBins; i++ {
		cum += s.Bins[i]
		if cum >= rank {
			switch i {
			case zeroBin:
				return 0
			case overflowBin:
				return math.Inf(1)
			}
			return (binLower(i) + binUpper(i)) / 2
		}
	}
	return math.Inf(1)
}

// Max returns the exclusive upper bound of the highest populated bin
// (0 when empty or when only the bottom bin is populated, +Inf when the
// overflow bin is populated).
func (s HistogramSnapshot) Max() float64 {
	for i := numBins - 1; i > zeroBin; i-- {
		if s.Bins[i] != 0 {
			return binUpper(i)
		}
	}
	return 0
}
