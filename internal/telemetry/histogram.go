package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bin layout. Positive values land in log-linear bins: the
// octave (floor log₂ v) selects a power-of-two range, split into
// subBuckets linear sub-bins — the circllhist construction with base 2
// instead of base 10, giving a worst-case relative error of
// 1/subBuckets per bin over the whole positive int64 range. Two special
// bins bracket the range: bin 0 collects zero and negative observations,
// and the last bin collects overflow (float observations ≥ 2⁶³,
// including +Inf).
const (
	subBits    = 3
	subBuckets = 1 << subBits // 8 linear sub-bins per octave
	octaves    = 63           // positive int64 exponents 0..62

	zeroBin     = 0
	overflowBin = 1 + octaves*subBuckets
	numBins     = overflowBin + 1
)

// Histogram is a mergeable log-linear latency histogram (values are
// conventionally nanoseconds, but any int64 magnitude works). All methods
// are safe for concurrent use; Observe is lock-free and allocation-free.
type Histogram struct {
	name  string
	count atomic.Uint64
	sum   atomic.Int64
	bins  []atomic.Uint64 // len numBins, allocated at construction
}

func newHistogram(name string) *Histogram {
	return &Histogram{name: name, bins: make([]atomic.Uint64, numBins)}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// binIndex maps a value to its bin.
func binIndex(v int64) int {
	if v <= 0 {
		return zeroBin
	}
	u := uint64(v)
	e := uint(bits.Len64(u)) - 1
	d := u - 1<<e // offset within the octave, < 2^e
	var sub uint64
	if e <= subBits {
		sub = d << (subBits - e)
	} else {
		sub = d >> (e - subBits)
	}
	return 1 + int(e)*subBuckets + int(sub)
}

// binLower returns the inclusive lower bound of a bin.
func binLower(i int) float64 {
	if i <= zeroBin {
		return math.Inf(-1) // bin 0 holds everything ≤ 0
	}
	if i >= overflowBin {
		return math.Ldexp(1, 63)
	}
	k := i - 1
	e := k / subBuckets
	s := k % subBuckets
	w := math.Ldexp(1, e) // 2^e
	return w + float64(s)*w/subBuckets
}

// binUpper returns the exclusive upper bound of a bin.
func binUpper(i int) float64 {
	if i <= zeroBin {
		return 0
	}
	if i >= overflowBin {
		return math.Inf(1)
	}
	k := i - 1
	e := k / subBuckets
	s := k % subBuckets
	w := math.Ldexp(1, e)
	return w + float64(s+1)*w/subBuckets
}

// observe records v unconditionally (kill switch already checked).
func (h *Histogram) observe(v int64, bin int) {
	h.bins[bin].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Observe records one value. Zero and negative values count in the
// dedicated bottom bin (and still contribute to Count and Sum).
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.observe(v, binIndex(v))
}

// ObserveFloat records a float observation. NaN is ignored; +Inf and
// values ≥ 2⁶³ count in the overflow bin (contributing MaxInt64 to Sum);
// -Inf and values ≤ 0 count in the bottom bin; positive values below 1
// count in the first positive bin.
func (h *Histogram) ObserveFloat(f float64) {
	if !enabled.Load() {
		return
	}
	switch {
	case math.IsNaN(f):
		return
	case f >= math.Ldexp(1, 63):
		h.observe(math.MaxInt64, overflowBin)
	case f <= 0:
		v := int64(math.MinInt64)
		if f > math.MinInt64 {
			v = int64(f)
		}
		h.observe(v, zeroBin)
	case f < 1:
		h.observe(0, binIndex(1))
	default:
		h.observe(int64(f), binIndex(int64(f)))
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge folds other's observations into h, bin-wise. Merge is associative
// and commutative (bin-wise addition), mirroring the aggregation core's
// database merge, and is not gated by the kill switch: it operates on
// already-recorded data. other is left unchanged.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.bins {
		if n := other.bins[i].Load(); n != 0 {
			h.bins[i].Add(n)
		}
	}
	if n := other.count.Load(); n != 0 {
		h.count.Add(n)
	}
	if s := other.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
}

// reset zeroes all state.
func (h *Histogram) reset() {
	for i := range h.bins {
		h.bins[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// HistogramSnapshot is a point-in-time copy of a histogram, safe to read
// without synchronization. Two snapshots are equal (==-comparable) iff
// their bin contents, counts, and sums are equal.
type HistogramSnapshot struct {
	Count uint64
	Sum   int64
	Bins  [numBins]uint64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between bin reads; the snapshot is internally consistent enough
// for reporting (counts never exceed what was observed).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.bins {
		s.Bins[i] = h.bins[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// EachBucket calls fn once per populated bin in ascending value order,
// with the bin's exclusive upper bound and its (non-cumulative) count.
// The bottom (≤ 0) bin reports upper bound 0 and the overflow bin +Inf,
// so accumulating the counts in call order yields a valid cumulative
// bucket series for monitoring-style expositions (circllhist-to-Prometheus
// mapping). The receiver is a pointer purely to avoid copying the bin
// array per call; fn must not retain it.
func (s *HistogramSnapshot) EachBucket(fn func(upper float64, count uint64)) {
	for i := 0; i < numBins; i++ {
		if n := s.Bins[i]; n != 0 {
			fn(binUpper(i), n)
		}
	}
}

// Bucket is one populated histogram bin for export: the bin's exclusive
// upper bound and its (non-cumulative) observation count.
type Bucket struct {
	Upper float64
	Count uint64
}

// AppendBuckets appends one Bucket per populated bin in ascending value
// order to dst (reusing its backing array) and returns the extended
// slice. Like EachBucket it reports the bottom bin with upper bound 0 and
// the overflow bin with +Inf. Scrapers that hold dst across scrapes read
// bucket series allocation-free in steady state.
func (s *HistogramSnapshot) AppendBuckets(dst []Bucket) []Bucket {
	for i := 0; i < numBins; i++ {
		if n := s.Bins[i]; n != 0 {
			dst = append(dst, Bucket{Upper: binUpper(i), Count: n})
		}
	}
	return dst
}

// Sub returns the bin-wise window delta s − prev, for turning two
// cumulative snapshots of the same histogram into the observations that
// landed between them (the inverse of Merge over a time axis: summing
// consecutive Sub results reconstructs the cumulative snapshot). A
// snapshot whose count went backwards means the registry was reset
// between the two reads; Sub then returns s unchanged, treating the
// post-reset state as a fresh window. Individual bins that went
// backwards without a count reset (torn concurrent reads) clamp to 0.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if s.Count < prev.Count {
		return s
	}
	d := HistogramSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	for i := range s.Bins {
		if s.Bins[i] > prev.Bins[i] {
			d.Bins[i] = s.Bins[i] - prev.Bins[i]
		}
	}
	return d
}

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bins. The exact
// edges are pinned to the bin bounds: q=0 returns the inclusive lower
// bound of the first populated bin and q=1 the exclusive upper bound of
// the last populated bin (matching Max), so a single-bucket histogram
// reports its bin's [lower, upper) range rather than collapsing to the
// midpoint at both ends. Interior quantiles interpolate linearly within
// the bin containing the continuous rank q·count, so q sweeping a bin's
// rank range sweeps its value range instead of jumping bin midpoints.
// Returns 0 for empty histograms, 0 for observations in the bottom (≤ 0)
// bin, and +Inf for the overflow bin.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		for i := 0; i < numBins; i++ {
			if s.Bins[i] != 0 {
				return binEstimate(i, binLower(i))
			}
		}
		return 0
	}
	if q >= 1 {
		return s.Max()
	}
	rank := q * float64(s.Count) // continuous rank in (0, count)
	var cum uint64
	for i := 0; i < numBins; i++ {
		if s.Bins[i] == 0 {
			continue
		}
		prev := cum
		cum += s.Bins[i]
		if float64(cum) >= rank {
			frac := (rank - float64(prev)) / float64(s.Bins[i])
			return binEstimate(i, binLower(i)+frac*(binUpper(i)-binLower(i)))
		}
	}
	return math.Inf(1)
}

// binEstimate clamps a within-bin value estimate to the representable
// conventions of the two special bins: the bottom bin always reports 0
// (its lower bound is -Inf) and the overflow bin +Inf.
func binEstimate(i int, v float64) float64 {
	switch i {
	case zeroBin:
		return 0
	case overflowBin:
		return math.Inf(1)
	}
	return v
}

// Max returns the exclusive upper bound of the highest populated bin
// (0 when empty or when only the bottom bin is populated, +Inf when the
// overflow bin is populated).
func (s HistogramSnapshot) Max() float64 {
	for i := numBins - 1; i > zeroBin; i-- {
		if s.Bins[i] != 0 {
			return binUpper(i)
		}
	}
	return 0
}
