package rnet

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/snapshot"
)

// testScheme is the shared aggregation scheme of all network tests.
func testScheme() *core.Scheme {
	return core.MustScheme([]string{"region", "mpi.rank"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "work"}})
}

// mkRec builds one record in a rank-local registry.
type recBuilder struct {
	reg    *attr.Registry
	region attr.Attribute
	rank   attr.Attribute
	work   attr.Attribute
}

func newRecBuilder() *recBuilder {
	reg := attr.NewRegistry()
	return &recBuilder{
		reg:    reg,
		region: reg.MustCreate("region", attr.String, attr.Nested),
		rank:   reg.MustCreate("mpi.rank", attr.Int, 0),
		work:   reg.MustCreate("work", attr.Int, attr.AsValue|attr.Aggregatable),
	}
}

func (b *recBuilder) rec(region string, rank, work int64) snapshot.FlatRecord {
	return snapshot.FlatRecord{
		{Attr: b.region, Value: attr.StringV(region)},
		{Attr: b.rank, Value: attr.IntV(rank)},
		{Attr: b.work, Value: attr.IntV(work)},
	}
}

func TestStreamingReductionMatchesOffline(t *testing.T) {
	const ranks, steps, epochEvery = 8, 30, 10
	scheme := testScheme()

	// reference: aggregate everything in one DB
	refB := newRecBuilder()
	ref, _ := core.NewDB(scheme, refB.reg)
	for r := 0; r < ranks; r++ {
		rng := rand.New(rand.NewSource(int64(r)))
		for s := 0; s < steps; s++ {
			ref.Update(refB.rec([]string{"a", "b", "c"}[rng.Intn(3)], int64(r), int64(rng.Intn(50))))
		}
	}
	refRows, _ := ref.FlushRecords()

	// network: same records pushed with epoch syncs
	var rootRows []snapshot.FlatRecord
	world, _ := mpi.NewWorld(ranks)
	err := world.Run(func(c *mpi.Comm) error {
		b := newRecBuilder()
		node, err := New(c, scheme, b.reg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for s := 0; s < steps; s++ {
			node.Push(b.rec([]string{"a", "b", "c"}[rng.Intn(3)], int64(c.Rank()), int64(rng.Intn(50))))
			if (s+1)%epochEvery == 0 {
				if _, err := node.Sync(); err != nil {
					return err
				}
			}
		}
		global, err := node.Sync() // final epoch
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			rootRows, err = global.FlushRecords()
			return err
		}
		if global != nil {
			return fmt.Errorf("non-root got global view")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rootRows) != len(refRows) {
		t.Fatalf("rows = %d, want %d", len(rootRows), len(refRows))
	}
	for i := range refRows {
		if rootRows[i].String() != refRows[i].String() {
			t.Errorf("row %d:\n network %s\n offline %s", i, rootRows[i], refRows[i])
		}
	}
}

func TestInSituQueryBetweenEpochs(t *testing.T) {
	// the root can inspect the running totals between epochs — the
	// in-situ analysis the paper's Section II-C describes
	const ranks = 4
	scheme := testScheme()
	world, _ := mpi.NewWorld(ranks)
	var epochTotals []int64
	err := world.Run(func(c *mpi.Comm) error {
		b := newRecBuilder()
		node, err := New(c, scheme, b.reg)
		if err != nil {
			return err
		}
		for epoch := 0; epoch < 3; epoch++ {
			node.Push(b.rec("step", int64(c.Rank()), 10))
			global, err := node.Sync()
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rows, err := global.FlushRecords()
				if err != nil {
					return err
				}
				var total int64
				for _, r := range rows {
					if v, ok := r.GetByName("sum#work"); ok {
						total += v.AsInt()
					}
				}
				epochTotals = append(epochTotals, total)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// totals grow by ranks*10 per epoch
	want := []int64{40, 80, 120}
	for i, w := range want {
		if epochTotals[i] != w {
			t.Errorf("epoch %d total = %d, want %d", i, epochTotals[i], w)
		}
	}
}

func TestDeltasResetPerEpoch(t *testing.T) {
	world, _ := mpi.NewWorld(2)
	scheme := testScheme()
	err := world.Run(func(c *mpi.Comm) error {
		b := newRecBuilder()
		node, err := New(c, scheme, b.reg)
		if err != nil {
			return err
		}
		node.Push(b.rec("x", int64(c.Rank()), 1))
		if node.PendingRecords() != 1 {
			return fmt.Errorf("pending = %d", node.PendingRecords())
		}
		if _, err := node.Sync(); err != nil {
			return err
		}
		if node.PendingRecords() != 0 {
			return fmt.Errorf("delta not reset after Sync")
		}
		if node.Epochs() != 1 || node.Pushed() != 1 {
			return fmt.Errorf("counters wrong: %d epochs %d pushed", node.Epochs(), node.Pushed())
		}
		// an empty epoch is fine
		if _, err := node.Sync(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFaninVariants(t *testing.T) {
	for _, fanin := range []int{2, 4, 8} {
		world, _ := mpi.NewWorld(9)
		scheme := testScheme()
		var total int64
		err := world.Run(func(c *mpi.Comm) error {
			b := newRecBuilder()
			node, err := New(c, scheme, b.reg, WithFanin(fanin))
			if err != nil {
				return err
			}
			node.Push(b.rec("x", int64(c.Rank()), int64(c.Rank()+1)))
			global, err := node.Sync()
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				rows, _ := global.FlushRecords()
				for _, r := range rows {
					if v, ok := r.GetByName("sum#work"); ok {
						total += v.AsInt()
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("fanin %d: %v", fanin, err)
		}
		if total != 45 { // 1+..+9
			t.Errorf("fanin %d: total = %d, want 45", fanin, total)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	world, _ := mpi.NewWorld(1)
	err := world.Run(func(c *mpi.Comm) error {
		b := newRecBuilder()
		if _, err := New(c, testScheme(), b.reg, WithFanin(1)); err == nil {
			return fmt.Errorf("fanin 1 accepted")
		}
		bad := &core.Scheme{} // no ops
		if _, err := New(c, bad, b.reg); err == nil {
			return fmt.Errorf("invalid scheme accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentEpochsUnderLoad(t *testing.T) {
	// many ranks, uneven push counts, multiple epochs — totals must match
	const ranks = 16
	scheme := testScheme()
	var wantTotal int64
	var mu sync.Mutex
	world, _ := mpi.NewWorld(ranks)
	var got int64
	err := world.Run(func(c *mpi.Comm) error {
		b := newRecBuilder()
		node, err := New(c, scheme, b.reg)
		if err != nil {
			return err
		}
		rng := rand.New(rand.NewSource(int64(c.Rank() * 31)))
		for epoch := 0; epoch < 4; epoch++ {
			n := rng.Intn(20)
			for i := 0; i < n; i++ {
				w := int64(rng.Intn(100))
				node.Push(b.rec("r", int64(c.Rank()), w))
				mu.Lock()
				wantTotal += w
				mu.Unlock()
			}
			global, err := node.Sync()
			if err != nil {
				return err
			}
			if c.Rank() == 0 && epoch == 3 {
				rows, _ := global.FlushRecords()
				for _, r := range rows {
					if v, ok := r.GetByName("sum#work"); ok {
						got += v.AsInt()
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != wantTotal {
		t.Errorf("network total = %d, want %d", got, wantTotal)
	}
}
