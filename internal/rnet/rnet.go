// Package rnet implements an on-line cross-process data reduction network
// in the style of MRNet/CBTF, which the paper cites as the way on-line
// solutions aggregate across processes (Section II-B): instead of writing
// per-process files and reducing post-mortem, every process streams its
// aggregation-database deltas through a logarithmic reduction tree at
// periodic synchronization points (epochs), and the root maintains a
// running global aggregation database that can be queried *while the
// application runs* — the basis for the in-situ analyses (dynamic load
// balancing, auto-tuning) the paper mentions in Section II-C.
//
// The network reuses the aggregation core end to end: local updates are
// ordinary core.DB updates, epoch reduction is a tree fold over the
// registry-independent wire format, and the root's view is a core.DB
// ready for CalQL queries.
package rnet

import (
	"fmt"
	"time"

	"caligo/internal/attr"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/obs/history"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
	"caligo/internal/trace"
)

// Self-instrumentation (see docs/OBSERVABILITY.md). All metrics are
// no-ops (one atomic load) unless telemetry is enabled.
var (
	telEpochs     = telemetry.NewCounter("caligo.rnet.epochs")
	telEpochNS    = telemetry.NewHistogram("caligo.rnet.epoch.ns")
	telDeltaBytes = telemetry.NewCounter("caligo.rnet.delta.bytes")
	// Lag/backpressure gauges for live monitoring. The gauges are
	// process-global while nodes are per-rank, so with many emulated
	// ranks the last writer wins — they read as a representative sample
	// of the network, not a per-rank breakdown (per-rank detail is in
	// the rnet.sync spans).
	gPendingRecords = telemetry.NewGauge("caligo.rnet.pending.records")
	gSyncLagNS      = telemetry.NewGauge("caligo.rnet.sync.lag.ns")
)

// Node is one process's endpoint in the reduction network. All
// application ranks construct a Node over their communicator with equal
// schemes; Push feeds local records and Sync runs one epoch reduction.
// A Node is confined to its rank's goroutine.
type Node struct {
	comm   *mpi.Comm
	scheme *core.Scheme
	fanin  int

	// delta accumulates records since the last epoch.
	delta *core.DB
	// global is the running cumulative database; maintained on the root
	// only (nil elsewhere).
	global *core.DB
	reg    *attr.Registry

	epochs   uint64
	pushed   uint64
	lastSync time.Time

	// Telemetry-reduction state: hist is this rank's history recorder
	// (nil without one); telGlobal is the root's cumulative cluster-wide
	// telemetry database (nil elsewhere, created lazily).
	hist      *history.Recorder
	telGlobal *core.DB
	telEpochs uint64
}

// Option configures a Node.
type Option func(*Node)

// WithFanin sets the reduction tree arity (default 2, the paper's
// logarithmic tree).
func WithFanin(fanin int) Option {
	return func(n *Node) { n.fanin = fanin }
}

// New creates a network endpoint for this rank. reg resolves the records
// passed to Push (typically the rank's measurement registry).
func New(comm *mpi.Comm, scheme *core.Scheme, reg *attr.Registry, opts ...Option) (*Node, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	delta, err := core.NewDB(scheme, reg)
	if err != nil {
		return nil, err
	}
	n := &Node{comm: comm, scheme: scheme, fanin: 2, delta: delta, reg: reg}
	for _, o := range opts {
		o(n)
	}
	if n.fanin < 2 {
		return nil, fmt.Errorf("rnet: fan-in must be >= 2, got %d", n.fanin)
	}
	if comm.Rank() == 0 {
		// the root's cumulative view lives in its own registry so wire
		// decoding stays registry-independent
		rootReg := attr.NewRegistry()
		global, err := core.NewDB(scheme, rootReg)
		if err != nil {
			return nil, err
		}
		n.global = global
	}
	return n, nil
}

// Push feeds one record into the local delta database (a streaming
// reduction; nothing is communicated until Sync).
func (n *Node) Push(rec snapshot.FlatRecord) {
	n.delta.Update(rec)
	n.pushed++
	gPendingRecords.Set(int64(n.delta.Len()))
}

// Pushed returns the number of records pushed locally.
func (n *Node) Pushed() uint64 { return n.pushed }

// Epochs returns the number of completed Sync epochs.
func (n *Node) Epochs() uint64 { return n.epochs }

// Sync runs one epoch: all ranks' current deltas are combined in a
// logarithmic tree reduction and merged into the root's cumulative
// database; local deltas reset. Sync is collective — every rank must call
// it the same number of times. On the root it returns the cumulative
// database (valid until the next Sync mutates it); other ranks get nil.
func (n *Node) Sync() (*core.DB, error) {
	var epochStart time.Time
	if telemetry.Enabled() {
		epochStart = time.Now()
		// epoch lag: how long this node's delta has been accumulating
		// since its previous sync — the "how stale is the root's view"
		// signal for the live monitor
		if !n.lastSync.IsZero() {
			gSyncLagNS.Set(epochStart.Sub(n.lastSync).Nanoseconds())
		}
		n.lastSync = epochStart
	}
	sp := trace.BeginRank("rnet.sync", n.comm.Rank())
	defer sp.End()
	payload := n.delta.EncodeState()
	n.delta.Clear()
	gPendingRecords.Set(0)
	telDeltaBytes.Add(uint64(len(payload)))
	sp.ArgInt("epoch", int64(n.epochs))
	sp.ArgInt("bytes", int64(len(payload)))

	combine := func(a, b []byte) ([]byte, error) {
		reg := attr.NewRegistry()
		db, err := core.NewDB(n.scheme, reg)
		if err != nil {
			return nil, err
		}
		if err := db.MergeEncodedState(a); err != nil {
			return nil, err
		}
		if err := db.MergeEncodedState(b); err != nil {
			return nil, err
		}
		return db.EncodeState(), nil
	}
	merged, err := n.comm.ReduceFanin(0, payload, combine, n.fanin)
	if err != nil {
		return nil, err
	}
	n.epochs++
	telEpochs.Inc()
	if n.comm.Rank() != 0 {
		if !epochStart.IsZero() {
			telEpochNS.Observe(time.Since(epochStart).Nanoseconds())
		}
		return nil, nil
	}
	if err := n.global.MergeEncodedState(merged); err != nil {
		return nil, err
	}
	if !epochStart.IsZero() {
		telEpochNS.Observe(time.Since(epochStart).Nanoseconds())
	}
	return n.global, nil
}

// WithHistory attaches the rank's telemetry-history recorder: each
// SyncTelemetry epoch drains the recorder's pending window records into
// the cluster-wide reduction.
func WithHistory(rec *history.Recorder) Option {
	return func(n *Node) { n.hist = rec }
}

// SyncTelemetry runs one telemetry-reduction epoch: every rank's buffered
// history window records (counters as window deltas, gauges as samples,
// histograms as bin sets) are aggregated into a cluster-scheme database,
// tree-reduced over the dedicated telemetry tag space — so it can
// interleave freely with data Syncs — and merged into the root's
// cumulative cluster-wide telemetry view. The root publishes the merged
// view (history.PublishCluster, served at /debug/cluster) and returns it;
// other ranks get nil. Like Sync, SyncTelemetry is collective: every rank
// must call it the same number of times. Ranks without a recorder
// contribute an empty delta.
func (n *Node) SyncTelemetry() (*history.ClusterView, error) {
	sp := trace.BeginRank("rnet.sync.telemetry", n.comm.Rank())
	defer sp.End()
	telReg := attr.NewRegistry()
	if n.hist != nil {
		telReg = n.hist.Registry()
	}
	delta, err := core.NewDB(history.ClusterScheme(), telReg)
	if err != nil {
		return nil, err
	}
	if n.hist != nil {
		for _, rec := range n.hist.TakePending() {
			delta.Update(rec)
		}
	}
	payload := delta.EncodeState()
	telDeltaBytes.Add(uint64(len(payload)))
	sp.ArgInt("epoch", int64(n.telEpochs))
	sp.ArgInt("bytes", int64(len(payload)))
	merged, err := n.comm.ReduceFaninTelemetry(0, payload, history.CombineEncoded, n.fanin)
	if err != nil {
		return nil, err
	}
	n.telEpochs++
	if n.comm.Rank() != 0 {
		return nil, nil
	}
	if n.telGlobal == nil {
		n.telGlobal, err = core.NewDB(history.ClusterScheme(), attr.NewRegistry())
		if err != nil {
			return nil, err
		}
	}
	if err := n.telGlobal.MergeEncodedState(merged); err != nil {
		return nil, err
	}
	// the epoch's own merged delta supplies per-rank gauge "last" values
	epochDB, err := core.NewDB(history.ClusterScheme(), attr.NewRegistry())
	if err != nil {
		return nil, err
	}
	if err := epochDB.MergeEncodedState(merged); err != nil {
		return nil, err
	}
	view, err := history.BuildClusterView(n.telGlobal, epochDB, n.telEpochs, time.Now().UnixNano())
	if err != nil {
		return nil, err
	}
	history.PublishCluster(view)
	return view, nil
}

// TelemetryGlobal returns the root's cumulative cluster-wide telemetry
// database (nil on other ranks, and before the first SyncTelemetry).
func (n *Node) TelemetryGlobal() *core.DB { return n.telGlobal }

// TelemetryEpochs returns the number of completed SyncTelemetry epochs.
func (n *Node) TelemetryEpochs() uint64 { return n.telEpochs }

// Global returns the root's cumulative database (nil on other ranks).
// It reflects all records included in completed epochs.
func (n *Node) Global() *core.DB { return n.global }

// PendingRecords reports the number of unique aggregation records waiting
// in the local delta (the buffered state the next Sync will ship).
func (n *Node) PendingRecords() int { return n.delta.Len() }
