package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"

	"caligo/internal/apps/paradis"
	"caligo/internal/mpi"
	"caligo/internal/pquery"
)

// ScalingConfig parameterizes the Figure 4 experiment: weak scaling of
// the MPI-based query application over a ParaDiS-shaped dataset (one
// input file per query process, as in the paper).
type ScalingConfig struct {
	// RankCounts lists the world sizes to measure (paper: up to 4096).
	RankCounts []int
	// Dataset shapes the per-rank input (default: the paper's 2174
	// records per file).
	Dataset paradis.Config
	// Query is the evaluation query (default: the paper's kernel+MPI
	// total-time query producing 85 output records).
	Query string
}

// DefaultScalingConfig measures power-of-4 world sizes up to 1024 ranks.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		RankCounts: []int{1, 4, 16, 64, 256, 1024},
		Dataset:    paradis.DefaultConfig(),
		Query:      paradis.EvaluationQuery,
	}
}

// ScalingPoint is one world size's measurement.
type ScalingPoint struct {
	Ranks      int
	TotalVirt  float64 // ms on the virtual clock
	LocalVirt  float64 // ms
	ReduceVirt float64 // ms
	OutputRows int
	Records    uint64 // input records processed across ranks
}

// RunScalingStudy executes the parallel query at each world size. Input
// datasets are generated in memory per rank (generation time counts as
// the local read+process phase, like the paper's file reads).
func RunScalingStudy(cfg ScalingConfig) ([]ScalingPoint, error) {
	if len(cfg.RankCounts) == 0 {
		return nil, fmt.Errorf("experiments: no rank counts")
	}
	if cfg.Query == "" {
		cfg.Query = paradis.EvaluationQuery
	}
	var points []ScalingPoint
	for _, p := range cfg.RankCounts {
		world, err := mpi.NewWorld(p)
		if err != nil {
			return nil, err
		}
		provider := func(rank int) (io.ReadCloser, error) {
			var buf bytes.Buffer
			if err := paradis.WriteRank(&buf, rank, cfg.Dataset); err != nil {
				return nil, err
			}
			return io.NopCloser(&buf), nil
		}
		res, err := pquery.Run(world, cfg.Query, provider)
		if err != nil {
			return nil, fmt.Errorf("ranks=%d: %w", p, err)
		}
		points = append(points, ScalingPoint{
			Ranks:      p,
			TotalVirt:  res.Timing.TotalVirt / 1e6,
			LocalVirt:  res.Timing.LocalVirt / 1e6,
			ReduceVirt: res.Timing.ReduceVirt / 1e6,
			OutputRows: len(res.Rows),
			Records:    res.RecordsProcessed,
		})
	}
	return points, nil
}

// Figure4 runs the scaling study and formats the paper's Figure 4.
func Figure4(cfg ScalingConfig) (*Report, error) {
	points, err := RunScalingStudy(cfg)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig4", Title: "Weak scaling of the MPI-based query application (virtual clock)"}
	r.Addf("%8s %12s %12s %12s %10s %12s", "ranks", "total ms", "local ms", "reduce ms", "rows", "records")
	for _, p := range points {
		r.Addf("%8d %12.2f %12.2f %12.2f %10d %12d",
			p.Ranks, p.TotalVirt, p.LocalVirt, p.ReduceVirt, p.OutputRows, p.Records)
	}

	first, last := points[0], points[len(points)-1]
	// weak scaling: per-rank input constant → local time roughly flat
	localFlat := last.LocalVirt < first.LocalVirt*4 && first.LocalVirt < last.LocalVirt*4
	r.Check("local read+process time is roughly constant (weak scaling)",
		localFlat, "local %0.2f ms at P=%d vs %0.2f ms at P=%d",
		first.LocalVirt, first.Ranks, last.LocalVirt, last.Ranks)

	// reduction time grows with P but sub-linearly (logarithmic tree)
	grows := true
	for i := 1; i < len(points); i++ {
		if points[i].Ranks > points[i-1].Ranks && points[i].ReduceVirt < points[i-1].ReduceVirt*0.5 {
			grows = false
		}
	}
	r.Check("cross-process reduction time grows with rank count",
		grows && last.ReduceVirt > first.ReduceVirt,
		"reduce %0.2f ms → %0.2f ms", first.ReduceVirt, last.ReduceVirt)

	if len(points) >= 3 && last.Ranks > first.Ranks*4 {
		ratio := last.ReduceVirt / math.Max(points[1].ReduceVirt, 1e-9)
		linear := float64(last.Ranks) / float64(points[1].Ranks)
		r.Check("reduction scales sub-linearly (logarithmic tree)",
			ratio < linear/2,
			"reduce grew %.1fx while ranks grew %.0fx", ratio, linear)
	}

	expRows := cfg.Dataset.Groups()
	r.Check(fmt.Sprintf("query produces %d output records at every scale (paper: 85)", expRows),
		allRows(points, expRows), "rows=%d", last.OutputRows)
	return r, nil
}

func allRows(points []ScalingPoint, want int) bool {
	for _, p := range points {
		if p.OutputRows != want {
			return false
		}
	}
	return true
}
