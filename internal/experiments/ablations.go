package experiments

import (
	"bytes"
	"fmt"
	"io"

	"caligo/internal/apps/paradis"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/core"
	"caligo/internal/mpi"
	"caligo/internal/pquery"
	"caligo/internal/snapshot"
)

// Ablations quantifies the design decisions DESIGN.md §5 calls out, as a
// report (the bench_test.go ablation benchmarks measure the same
// comparisons under `go test -bench`):
//
//  1. reduction-tree fan-in (virtual reduce time per arity), and
//  2. snapshot-stream compression (bytes/record, tree vs flat).
//
// Timing-based ablations (key encoding, lock contention, op dispatch) are
// left to the benchmarks, where the harness controls measurement noise.
func Ablations() (*Report, error) {
	r := &Report{ID: "ablations", Title: "Design ablations (DESIGN.md §5)"}

	// --- fan-in sweep over the tree reduction (64 ranks) -----------------
	ds := paradis.Config{Kernels: 20, MPIFunctions: 10, Iterations: 5, ExtraRecords: 0}
	provider := func(rank int) (io.ReadCloser, error) {
		var buf bytes.Buffer
		if err := paradis.WriteRank(&buf, rank, ds); err != nil {
			return nil, err
		}
		return io.NopCloser(&buf), nil
	}
	const query = "AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function"
	r.Addf("reduction-tree fan-in (64 ranks, virtual reduce time):")
	reduceTimes := map[int]float64{}
	for _, fanin := range []int{2, 4, 8, 16} {
		world, err := mpi.NewWorld(64)
		if err != nil {
			return nil, err
		}
		res, err := pquery.RunFanin(world, query, provider, fanin)
		if err != nil {
			return nil, fmt.Errorf("fanin %d: %w", fanin, err)
		}
		reduceTimes[fanin] = res.Timing.ReduceVirt
		r.Addf("  fan-in %2d: %8.1f us", fanin, res.Timing.ReduceVirt/1e3)
	}
	r.Check("binary fan-in minimizes virtual reduce time (the paper's logarithmic tree)",
		reduceTimes[2] <= reduceTimes[4] && reduceTimes[2] <= reduceTimes[8] &&
			reduceTimes[2] <= reduceTimes[16],
		"f2=%.1fus f4=%.1fus f8=%.1fus f16=%.1fus",
		reduceTimes[2]/1e3, reduceTimes[4]/1e3, reduceTimes[8]/1e3, reduceTimes[16]/1e3)

	// --- snapshot encoding: context-tree refs vs flat entries ------------
	treeBytes, flatBytes, nRecs, err := snapshotEncodingSizes()
	if err != nil {
		return nil, err
	}
	r.Addf("snapshot stream encoding (%d records):", nRecs)
	r.Addf("  tree-compressed: %6d bytes (%5.1f /record)", treeBytes, float64(treeBytes)/float64(nRecs))
	r.Addf("  flat entries:    %6d bytes (%5.1f /record)", flatBytes, float64(flatBytes)/float64(nRecs))
	r.Check("context-tree compression shrinks the stream (the paper's snapshot design)",
		treeBytes < flatBytes, "%.0f%% of flat size", float64(treeBytes)/float64(flatBytes)*100)

	// --- per-thread DBs merged at flush equal a single shared DB ---------
	eq, err := perThreadMergeEquivalence()
	if err != nil {
		return nil, err
	}
	r.Check("per-thread databases merged at flush equal a single shared database (lock-free design is result-neutral)",
		eq, "verified over 4x500 records")
	return r, nil
}

// snapshotEncodingSizes writes the same records both ways and returns the
// stream sizes.
func snapshotEncodingSizes() (treeBytes, flatBytes, n int, err error) {
	reg := attr.NewRegistry()
	tree := contexttree.New()
	fn := reg.MustCreate("function", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, 0)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue)
	names := []string{"main", "solver", "smoother", "residual"}
	var recs []snapshot.Record
	for i := 0; i < 256; i++ {
		var sb snapshot.Builder
		node := contexttree.InvalidNode
		for d := 0; d <= i%3; d++ {
			node = tree.GetChild(node, fn, attr.StringV(names[(i+d)%len(names)]))
		}
		sb.AddNode(node)
		sb.AddNode(tree.GetChild(contexttree.InvalidNode, iter, attr.IntV(int64(i%8))))
		sb.AddImmediate(dur, attr.IntV(int64(i)))
		recs = append(recs, sb.Record())
	}
	var treeStream bytes.Buffer
	w := calformat.NewWriter(&treeStream, reg, tree)
	for _, rec := range recs {
		if err := w.WriteRecord(rec); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := w.Flush(); err != nil {
		return 0, 0, 0, err
	}
	var flatStream bytes.Buffer
	fw := calformat.NewWriter(&flatStream, reg, tree)
	for _, rec := range recs {
		flat, err := rec.Unpack(tree, reg)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := fw.WriteFlat(flat); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := fw.Flush(); err != nil {
		return 0, 0, 0, err
	}
	return treeStream.Len(), flatStream.Len(), len(recs), nil
}

// perThreadMergeEquivalence compares per-thread DBs + merge against one
// shared DB over the same records.
func perThreadMergeEquivalence() (bool, error) {
	reg := attr.NewRegistry()
	region := reg.MustCreate("region", attr.String, attr.Nested)
	work := reg.MustCreate("work", attr.Int, attr.AsValue)
	scheme := core.MustScheme([]string{"region"},
		[]core.OpSpec{{Kind: core.OpCount}, {Kind: core.OpSum, Target: "work"}})

	shared, err := core.NewDB(scheme, reg)
	if err != nil {
		return false, err
	}
	parts := make([]*core.DB, 4)
	for i := range parts {
		parts[i], err = core.NewDB(scheme, reg)
		if err != nil {
			return false, err
		}
	}
	names := []string{"a", "b", "c"}
	for i := 0; i < 2000; i++ {
		rec := snapshot.FlatRecord{
			{Attr: region, Value: attr.StringV(names[i%3])},
			{Attr: work, Value: attr.IntV(int64(i % 97))},
		}
		shared.Update(rec)
		parts[i%4].Update(rec)
	}
	merged := parts[0]
	for _, p := range parts[1:] {
		if err := merged.Merge(p); err != nil {
			return false, err
		}
	}
	a, err := shared.FlushRecords()
	if err != nil {
		return false, err
	}
	b, err := merged.FlushRecords()
	if err != nil {
		return false, err
	}
	if len(a) != len(b) {
		return false, nil
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false, nil
		}
	}
	return true, nil
}
