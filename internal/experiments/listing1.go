package experiments

import (
	"caligo/caliper"
	"caligo/calql"
)

// Listing1 reproduces the paper's Section III example: the annotated loop
// program of Listing 1 aggregated under
//
//	AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
//
// producing the time-series function profile table the paper prints.
// The run uses virtual time with 10 units per annotated call, so counts
// and sums are exact: per iteration, foo is visited twice (sum 20) and
// bar once (sum 10), matching the paper's count column (2 and 1 per
// iteration) exactly and its sum column in shape.
func Listing1() (*Report, error) {
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "function,loop.iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		return nil, err
	}
	th := ch.Thread()

	call := func(name string) error {
		if err := th.Begin("function", name); err != nil {
			return err
		}
		th.AdvanceVirtualTime(10)
		return th.End("function")
	}
	for i := 0; i < 4; i++ {
		if err := th.Begin("loop.iteration", i); err != nil {
			return nil, err
		}
		for _, c := range []string{"foo", "foo", "bar"} {
			if err := call(c); err != nil {
				return nil, err
			}
		}
		if err := th.End("loop.iteration"); err != nil {
			return nil, err
		}
	}

	rs, err := calql.QueryChannel(`
		SELECT function, loop.iteration, aggregate.count AS count,
		       sum#time.duration AS sum#time
		AGGREGATE count, sum(time.duration)
		WHERE function, loop.iteration
		GROUP BY function, loop.iteration
		ORDER BY loop.iteration, function DESC`, ch)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "listing1", Title: "Section III example: time-series function profile"}
	r.Addf("%-10s %-16s %6s %10s", "function", "loop.iteration", "count", "sum#time")
	type row struct{ count, sum int64 }
	got := map[string]row{}
	for _, rec := range rs.Rows {
		fn, _ := rec.GetByName("function")
		it, _ := rec.GetByName("loop.iteration")
		c, _ := rec.GetByName("aggregate.count")
		s, _ := rec.GetByName("sum#time.duration")
		r.Addf("%-10s %-16s %6d %10d", fn.String(), it.String(), c.AsInt(), s.AsInt())
		got[fn.String()+"/"+it.String()] = row{c.AsInt(), s.AsInt()}
	}
	pass := true
	for i := 0; i < 4; i++ {
		it := string(rune('0' + i))
		if got["foo/"+it] != (row{2, 20}) || got["bar/"+it] != (row{1, 10}) {
			pass = false
		}
	}
	r.Check("each iteration shows foo visited twice and bar once with exact sums (paper: Listing 1 table)",
		pass, "foo/0=%v bar/0=%v", got["foo/0"], got["bar/0"])
	r.Check("one output row per (function, iteration) pair",
		len(rs.Rows) == 8, "%d rows", len(rs.Rows))
	return r, nil
}
