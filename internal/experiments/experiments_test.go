package experiments

import (
	"strings"
	"testing"

	"caligo/internal/apps/cleverleaf"
	"caligo/internal/apps/paradis"
)

// smallCaseStudy is a fast configuration that still exhibits the paper's
// workload shapes.
func smallCaseStudy() CaseStudyConfig {
	return CaseStudyConfig{
		App: cleverleaf.Config{Ranks: 18, Timesteps: 40, Levels: 3,
			WorkScale: 1, VirtualTime: true},
		SampleHz: 2000,
	}
}

func requirePass(t *testing.T, r *Report, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed() {
		t.Errorf("shape checks failed:\n%s", r)
	}
	if len(r.Lines) == 0 {
		t.Error("report has no data lines")
	}
}

func TestReportFormatting(t *testing.T) {
	r := &Report{ID: "figX", Title: "demo"}
	r.Addf("line %d", 1)
	r.Check("claim", true, "note %d", 2)
	r.Check("bad claim", false, "oops")
	s := r.String()
	if !strings.Contains(s, "figX") || !strings.Contains(s, "[PASS] claim") ||
		!strings.Contains(s, "[FAIL] bad claim") {
		t.Errorf("String() = %s", s)
	}
	if r.Passed() {
		t.Error("Passed should be false with a failing check")
	}
	md := r.Markdown()
	if !strings.Contains(md, "###") || !strings.Contains(md, "| claim | yes |") {
		t.Errorf("Markdown() = %s", md)
	}
	if len(IDs()) != 10 {
		t.Errorf("IDs = %v", IDs())
	}
}

func TestListing1(t *testing.T) {
	rep, err := Listing1()
	requirePass(t, rep, err)
	if len(rep.Lines) != 9 { // header + 8 rows
		t.Errorf("lines = %d:\n%s", len(rep.Lines), rep)
	}
}

func TestAblations(t *testing.T) {
	rep, err := Ablations()
	requirePass(t, rep, err)
}

func TestOverheadStudySmall(t *testing.T) {
	cfg := OverheadConfig{
		App:      cleverleaf.Config{Ranks: 2, Timesteps: 12, Levels: 3, WorkScale: 0.4},
		Runs:     1,
		SampleHz: 500,
	}
	rows, err := RunOverheadStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9 configurations", len(rows))
	}
	byName := map[string]OverheadRow{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Mean <= 0 {
			t.Errorf("%s: zero runtime", r.Name)
		}
	}
	// event-mode trace stores every snapshot
	tr := byName["trace (event)"]
	if tr.OutputRecords != int(tr.Snapshots) {
		t.Errorf("trace: %d outputs vs %d snapshots", tr.OutputRecords, tr.Snapshots)
	}
	// aggregation schemes order: B < A < C output records
	a, b, c := byName["scheme A (event)"], byName["scheme B (event)"], byName["scheme C (event)"]
	if !(b.OutputRecords < a.OutputRecords && a.OutputRecords < c.OutputRecords) {
		t.Errorf("output records: B=%d A=%d C=%d, want B<A<C",
			b.OutputRecords, a.OutputRecords, c.OutputRecords)
	}
	// all event-mode configs see the same snapshot count
	if a.Snapshots != tr.Snapshots || b.Snapshots != tr.Snapshots || c.Snapshots != tr.Snapshots {
		t.Errorf("event snapshot counts differ: trace=%d A=%d B=%d C=%d",
			tr.Snapshots, a.Snapshots, b.Snapshots, c.Snapshots)
	}
	// Table I report built from the same rows
	rep := TableIFromRows(rows)
	if !rep.Passed() {
		t.Errorf("Table I shape checks failed:\n%s", rep)
	}
}

func TestFigure4Scaling(t *testing.T) {
	cfg := ScalingConfig{
		RankCounts: []int{1, 4, 16, 64},
		Dataset:    paradis.Config{Kernels: 12, MPIFunctions: 6, Iterations: 5, ExtraRecords: 3},
	}
	rep, err := Figure4(cfg)
	requirePass(t, rep, err)
}

func TestFigure4PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-shape dataset in -short mode")
	}
	cfg := DefaultScalingConfig()
	cfg.RankCounts = []int{1, 4, 16, 64}
	rep, err := Figure4(cfg)
	requirePass(t, rep, err)
	// the evaluation query must produce the paper's 85 rows
	found := false
	for _, c := range rep.ShapeChecks {
		if strings.Contains(c.Claim, "85") && c.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("85-row check missing or failed:\n%s", rep)
	}
}

func TestFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	rep, err := Figure5(smallCaseStudy())
	requirePass(t, rep, err)
}

func TestFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	rep, err := Figure6(smallCaseStudy())
	requirePass(t, rep, err)
}

func TestFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	rep, err := Figure7(smallCaseStudy())
	requirePass(t, rep, err)
}

func TestFigures8And9(t *testing.T) {
	if testing.Short() {
		t.Skip("case study in -short mode")
	}
	cfg := smallCaseStudy()
	reg, recs, err := caseStudyFullProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep8, err := figure8From(cfg, reg, recs)
	requirePass(t, rep8, err)
	rep9, err := figure9From(cfg, reg, recs)
	requirePass(t, rep9, err)
}

func TestScalingErrors(t *testing.T) {
	if _, err := RunScalingStudy(ScalingConfig{}); err == nil {
		t.Error("empty rank counts should error")
	}
	bad := ScalingConfig{RankCounts: []int{2}, Query: "FROB",
		Dataset: paradis.Config{Kernels: 1, MPIFunctions: 1, Iterations: 1}}
	if _, err := RunScalingStudy(bad); err == nil {
		t.Error("bad query should error")
	}
}
