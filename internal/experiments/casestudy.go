package experiments

import (
	"bytes"
	"fmt"
	"math"
	"sort"

	"caligo/caliper"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/query"
	"caligo/internal/snapshot"
)

// CaseStudyConfig parameterizes the Section VI experiments (the paper
// runs the triple-point problem on 18 ranks with 3 refinement levels).
type CaseStudyConfig struct {
	App      cleverleaf.Config
	SampleHz float64 // sampling frequency for Figure 5 (paper: 100 Hz)
}

// DefaultCaseStudyConfig reproduces the paper's setup: 18 MPI ranks, 3
// refinement levels, 100 timesteps of the triple-point problem. The
// time-attribution figures (6-9) run the proxy in discrete-event mode
// ("timer.source": "virtual"), which makes their shapes deterministic and
// independent of host core counts; the sampling figure (5) runs real CPU
// work, since sample counts measure where cycles actually go.
func DefaultCaseStudyConfig() CaseStudyConfig {
	return CaseStudyConfig{
		App:      cleverleaf.Config{Ranks: 18, Timesteps: 100, Levels: 3, WorkScale: 1, VirtualTime: true},
		SampleHz: 100,
	}
}

// runProfiled executes the proxy with per-rank channels of the given
// configuration and returns all flushed records merged into one registry
// (the per-process datasets of a real run, combined for off-line
// analysis).
func runProfiled(app cleverleaf.Config, chCfg caliper.Config) (*attr.Registry, []snapshot.FlatRecord, error) {
	channels := make([]*caliper.Channel, app.Ranks)
	for r := range channels {
		ch, err := caliper.NewChannel(chCfg)
		if err != nil {
			return nil, nil, err
		}
		channels[r] = ch
	}
	err := cleverleaf.Run(app, func(rank int) *caliper.Thread {
		return channels[rank].Thread()
	})
	if err != nil {
		return nil, nil, err
	}
	// merge per-rank outputs into one registry via the stream format,
	// exactly how per-process .cali files combine off-line
	reg := attr.NewRegistry()
	tree := contexttree.New()
	var all []snapshot.FlatRecord
	for _, ch := range channels {
		var buf bytes.Buffer
		w := calformat.NewWriter(&buf, ch.Registry(), contexttree.New())
		if err := ch.FlushEmit(w.WriteFlat); err != nil {
			return nil, nil, err
		}
		if err := w.Flush(); err != nil {
			return nil, nil, err
		}
		recs, err := calformat.NewReader(&buf, reg, tree).ReadAll()
		if err != nil {
			return nil, nil, err
		}
		all = append(all, recs...)
	}
	return reg, all, nil
}

// offline runs an off-line query over merged records.
func offline(reg *attr.Registry, recs []snapshot.FlatRecord, queryText string) ([]snapshot.FlatRecord, error) {
	q, err := calql.Parse(queryText)
	if err != nil {
		return nil, err
	}
	return query.Run(q, reg, recs)
}

// getF fetches a named value as float64 (0 when absent).
func getF(r snapshot.FlatRecord, name string) float64 {
	if v, ok := r.GetByName(name); ok {
		return v.AsFloat()
	}
	return 0
}

// getS fetches a named value as string ("" when absent).
func getS(r snapshot.FlatRecord, name string) string {
	if v, ok := r.GetByName(name); ok {
		return v.String()
	}
	return ""
}

// Figure5 reproduces the sampling-based kernel profile: a 100 Hz
// sampling run with on-line "AGGREGATE count GROUP BY kernel", then
// off-line "AGGREGATE sum(aggregate.count) GROUP BY kernel".
func Figure5(cfg CaseStudyConfig) (*Report, error) {
	app := cfg.App
	app.VirtualTime = false // sampling measures real CPU placement
	reg, recs, err := runProfiled(app, caliper.Config{
		"services":          "sampler,aggregate",
		"sampler.frequency": fmt.Sprintf("%g", cfg.SampleHz),
		"aggregate.key":     "kernel",
		"aggregate.ops":     "count",
	})
	if err != nil {
		return nil, err
	}
	rows, err := offline(reg, recs,
		"AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY sum#aggregate.count DESC")
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig5", Title: "Sampling profile of computational kernels (100 Hz)"}
	r.Addf("%-16s %10s", "kernel", "samples")
	samples := map[string]float64{}
	for _, row := range rows {
		name := getS(row, "kernel")
		n := getF(row, "sum#aggregate.count")
		samples[name] = n
		label := name
		if label == "" {
			label = "(outside kernels)"
		}
		r.Addf("%-16s %10.0f", label, n)
	}
	topKernel, topVal := "", 0.0
	for k, v := range samples {
		if k != "" && v > topVal {
			topKernel, topVal = k, v
		}
	}
	r.Check("calc-dt dominates the annotated kernels (paper: Figure 5)",
		topKernel == "calc-dt", "top kernel %s (%0.0f samples)", topKernel, topVal)
	r.Check("most samples fall outside annotated kernels (paper: Figure 5)",
		samples[""] > topVal, "outside=%0.0f vs top kernel=%0.0f", samples[""], topVal)
	return r, nil
}

// Figure6 reproduces the MPI function time profile:
// "AGGREGATE count, sum(time.duration) GROUP BY mpi.function".
func Figure6(cfg CaseStudyConfig) (*Report, error) {
	reg, recs, err := runProfiled(cfg.App, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  timerSource(cfg.App),
		"aggregate.key": "mpi.function",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		return nil, err
	}
	rows, err := offline(reg, recs,
		"AGGREGATE sum(aggregate.count), sum(sum#time.duration) WHERE mpi.function "+
			"GROUP BY mpi.function ORDER BY sum#sum#time.duration DESC LIMIT 10")
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "fig6", Title: "MPI function profile (top 10 by total time)"}
	r.Addf("%-16s %10s %14s", "mpi.function", "count", "time (ms)")
	times := map[string]float64{}
	for _, row := range rows {
		name := getS(row, "mpi.function")
		t := getF(row, "sum#sum#time.duration") / 1e6
		times[name] = t
		r.Addf("%-16s %10.0f %14.2f", name, getF(row, "sum#aggregate.count"), t)
	}
	r.Check("MPI_Barrier dominates MPI time (paper: Figure 6)",
		times["MPI_Barrier"] > times["MPI_Allreduce"],
		"barrier=%.2fms allreduce=%.2fms", times["MPI_Barrier"], times["MPI_Allreduce"])
	r.Check("point-to-point time is comparatively small (paper: Figure 6)",
		times["MPI_Send"] < times["MPI_Barrier"] && times["MPI_Recv"] < times["MPI_Barrier"],
		"send=%.2fms recv=%.2fms", times["MPI_Send"], times["MPI_Recv"])
	return r, nil
}

// balanceStat summarizes a per-rank series.
type balanceStat struct {
	min, mean, max float64
}

func stat(vals map[int]float64, ranks int) balanceStat {
	s := balanceStat{min: math.Inf(1)}
	for r := 0; r < ranks; r++ {
		v := vals[r]
		s.mean += v
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.mean /= float64(ranks)
	return s
}

// imbalance is (max-min)/max, 0 for empty series.
func (s balanceStat) imbalance() float64 {
	if s.max == 0 {
		return 0
	}
	return (s.max - s.min) / s.max
}

// Figure7 reproduces the load-balance study:
// "AGGREGATE sum(time.duration) GROUP BY kernel, mpi.function, mpi.rank".
func Figure7(cfg CaseStudyConfig) (*Report, error) {
	reg, recs, err := runProfiled(cfg.App, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  timerSource(cfg.App),
		"aggregate.key": "kernel,mpi.function,mpi.rank",
		"aggregate.ops": "sum(time.duration)",
	})
	if err != nil {
		return nil, err
	}
	rows, err := offline(reg, recs,
		"AGGREGATE sum(sum#time.duration) GROUP BY kernel, mpi.function, mpi.rank")
	if err != nil {
		return nil, err
	}
	ranks := cfg.App.Ranks
	comp := map[int]float64{} // computation time per rank (non-MPI)
	mpiT := map[int]float64{} // MPI time per rank
	perKernel := map[string]map[int]float64{}
	perMPI := map[string]map[int]float64{}
	kernelTotal := map[string]float64{}
	mpiTotal := map[string]float64{}
	for _, row := range rows {
		rank := int(getF(row, "mpi.rank"))
		t := getF(row, "sum#sum#time.duration") / 1e6
		mfn := getS(row, "mpi.function")
		k := getS(row, "kernel")
		if mfn != "" {
			mpiT[rank] += t
			if perMPI[mfn] == nil {
				perMPI[mfn] = map[int]float64{}
			}
			perMPI[mfn][rank] += t
			mpiTotal[mfn] += t
			continue
		}
		comp[rank] += t
		if k != "" {
			if perKernel[k] == nil {
				perKernel[k] = map[int]float64{}
			}
			perKernel[k][rank] += t
			kernelTotal[k] += t
		}
	}
	top2 := func(totals map[string]float64) []string {
		names := make([]string, 0, len(totals))
		for n := range totals {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
		if len(names) > 2 {
			names = names[:2]
		}
		return names
	}
	r := &Report{ID: "fig7", Title: "Load balance across MPI ranks (ms; min/mean/max)"}
	r.Addf("%-22s %10s %10s %10s %10s", "category", "min", "mean", "max", "imbalance")
	add := func(name string, vals map[int]float64) balanceStat {
		s := stat(vals, ranks)
		r.Addf("%-22s %10.2f %10.2f %10.2f %9.1f%%", name, s.min, s.mean, s.max, s.imbalance()*100)
		return s
	}
	compStat := add("total computation", comp)
	add("total MPI", mpiT)
	kernels := top2(kernelTotal)
	var kernelSpread float64
	for _, k := range kernels {
		s := add("kernel "+k, perKernel[k])
		kernelSpread += s.max - s.min
	}
	for _, m := range top2(mpiTotal) {
		add("mpi "+m, perMPI[m])
	}

	momStat := stat(perKernel["advec-mom"], ranks)
	dtStat := stat(perKernel["calc-dt"], ranks)

	r.Check("total computation shows modest cross-rank imbalance (paper: small amount)",
		compStat.imbalance() > 0.01 && compStat.imbalance() < 0.5,
		"imbalance %.1f%%", compStat.imbalance()*100)
	r.Check("top-2 kernel imbalance accounts for less than half of the total (paper: Figure 7)",
		kernelSpread < (compStat.max-compStat.min)/2*1.2,
		"top2 spread %.2f ms vs total spread %.2f ms", kernelSpread, compStat.max-compStat.min)
	r.Check("advec-mom shows almost no imbalance (paper: Figure 7)",
		momStat.imbalance() < dtStat.imbalance() && momStat.imbalance() < 0.15,
		"advec-mom %.1f%% vs calc-dt %.1f%%",
		momStat.imbalance()*100, dtStat.imbalance()*100)
	return r, nil
}

// timerSource selects the timer service's time source for an app config.
func timerSource(app cleverleaf.Config) string {
	if app.VirtualTime {
		return "virtual"
	}
	return "real"
}

// caseStudyFullProfile runs the event-mode scheme-C profile (all
// annotation attributes in the key) once for Figures 8 and 9.
func caseStudyFullProfile(cfg CaseStudyConfig) (*attr.Registry, []snapshot.FlatRecord, error) {
	return runProfiled(cfg.App, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  timerSource(cfg.App),
		"aggregate.key": "function,annotation,amr.level,kernel,iteration#mainloop,mpi.rank,mpi.function",
		"aggregate.ops": "count,sum(time.duration)",
	})
}

// Figure8 reproduces the per-timestep AMR level study:
// "AGGREGATE sum(time.duration) WHERE not(mpi.function)
//
//	GROUP BY amr.level, iteration#mainloop".
func Figure8(cfg CaseStudyConfig) (*Report, error) {
	reg, recs, err := caseStudyFullProfile(cfg)
	if err != nil {
		return nil, err
	}
	return figure8From(cfg, reg, recs)
}

func figure8From(cfg CaseStudyConfig, reg *attr.Registry, recs []snapshot.FlatRecord) (*Report, error) {
	rows, err := offline(reg, recs,
		"AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) "+
			"GROUP BY amr.level, iteration#mainloop ORDER BY iteration#mainloop, amr.level")
	if err != nil {
		return nil, err
	}
	levels := cfg.App.Levels
	steps := cfg.App.Timesteps
	series := make([][]float64, levels)
	for l := range series {
		series[l] = make([]float64, steps)
	}
	for _, row := range rows {
		lvRaw, ok := row.GetByName("amr.level")
		if !ok {
			continue
		}
		itRaw, ok := row.GetByName("iteration#mainloop")
		if !ok {
			continue
		}
		lv, it := int(lvRaw.AsInt()), int(itRaw.AsInt())
		if lv < 0 || lv >= levels || it < 0 || it >= steps {
			continue
		}
		series[lv][it] += getF(row, "sum#sum#time.duration") / 1e6
	}
	r := &Report{ID: "fig8", Title: "Runtime per AMR level per timestep (ms)"}
	header := fmt.Sprintf("%8s", "step")
	for l := 0; l < levels; l++ {
		header += fmt.Sprintf(" %10s", fmt.Sprintf("level %d", l))
	}
	r.Lines = append(r.Lines, header)
	stride := steps / 10
	if stride < 1 {
		stride = 1
	}
	for it := 0; it < steps; it += stride {
		line := fmt.Sprintf("%8d", it)
		for l := 0; l < levels; l++ {
			line += fmt.Sprintf(" %10.2f", series[l][it])
		}
		r.Lines = append(r.Lines, line)
	}
	third := steps / 3
	sum := func(l, from, to int) float64 {
		t := 0.0
		for i := from; i < to; i++ {
			t += series[l][i]
		}
		return t
	}
	l0e, l0l := sum(0, 0, third), sum(0, 2*third, steps)
	l2e, l2l := sum(2, 0, third), sum(2, 2*third, steps)
	l1e, l1l := sum(1, 0, third), sum(1, 2*third, steps)
	r.Check("level 0 time stays almost constant (paper: Figure 8)",
		l0l < l0e*1.6 && l0e < l0l*1.6, "early %.1f ms late %.1f ms", l0e, l0l)
	r.Check("level 1 time increases slightly (paper: Figure 8)",
		l1l > l1e && l1l < l1e*2.5, "early %.1f ms late %.1f ms", l1e, l1l)
	r.Check("level 2 time increases significantly (paper: Figure 8)",
		l2l > l2e*2, "early %.1f ms late %.1f ms", l2e, l2l)
	return r, nil
}

// Figure9 reproduces the per-rank AMR level study:
// "AGGREGATE sum(time.duration) WHERE not(mpi.function)
//
//	GROUP BY amr.level, mpi.rank".
func Figure9(cfg CaseStudyConfig) (*Report, error) {
	reg, recs, err := caseStudyFullProfile(cfg)
	if err != nil {
		return nil, err
	}
	return figure9From(cfg, reg, recs)
}

func figure9From(cfg CaseStudyConfig, reg *attr.Registry, recs []snapshot.FlatRecord) (*Report, error) {
	rows, err := offline(reg, recs,
		"AGGREGATE sum(sum#time.duration) WHERE not(mpi.function) "+
			"GROUP BY amr.level, mpi.rank ORDER BY mpi.rank, amr.level")
	if err != nil {
		return nil, err
	}
	levels, ranks := cfg.App.Levels, cfg.App.Ranks
	grid := make([][]float64, ranks)
	for r := range grid {
		grid[r] = make([]float64, levels)
	}
	for _, row := range rows {
		lvRaw, ok := row.GetByName("amr.level")
		if !ok {
			continue
		}
		rkRaw, ok := row.GetByName("mpi.rank")
		if !ok {
			continue
		}
		lv, rk := int(lvRaw.AsInt()), int(rkRaw.AsInt())
		if lv < 0 || lv >= levels || rk < 0 || rk >= ranks {
			continue
		}
		grid[rk][lv] += getF(row, "sum#sum#time.duration") / 1e6
	}
	rep := &Report{ID: "fig9", Title: "Runtime per AMR level per MPI rank (ms)"}
	header := fmt.Sprintf("%6s", "rank")
	for l := 0; l < levels; l++ {
		header += fmt.Sprintf(" %10s", fmt.Sprintf("level %d", l))
	}
	rep.Lines = append(rep.Lines, header)
	for rk := 0; rk < ranks; rk++ {
		line := fmt.Sprintf("%6d", rk)
		for l := 0; l < levels; l++ {
			line += fmt.Sprintf(" %10.2f", grid[rk][l])
		}
		rep.Lines = append(rep.Lines, line)
	}
	// "the runtime proportions spent in each refinement level are similar
	// on most ranks, with some exceptions" — compare each rank's level
	// shares against the cross-rank *median* share, which is robust to
	// the outlier ranks themselves (and to single-core scheduling noise).
	shares := make([][]float64, ranks)
	for rk := 0; rk < ranks; rk++ {
		rankTotal := 0.0
		for l := 0; l < levels; l++ {
			rankTotal += grid[rk][l]
		}
		shares[rk] = make([]float64, levels)
		if rankTotal == 0 {
			continue
		}
		for l := 0; l < levels; l++ {
			shares[rk][l] = grid[rk][l] / rankTotal
		}
	}
	medianShare := make([]float64, levels)
	for l := 0; l < levels; l++ {
		col := make([]float64, ranks)
		for rk := 0; rk < ranks; rk++ {
			col[rk] = shares[rk][l]
		}
		sort.Float64s(col)
		medianShare[l] = col[ranks/2]
	}
	outliers := 0
	for rk := 0; rk < ranks; rk++ {
		for l := 0; l < levels; l++ {
			if math.Abs(shares[rk][l]-medianShare[l]) > 0.05 {
				outliers++
				break
			}
		}
	}
	rep.Check("level proportions are similar on most ranks, with exceptions (paper: Figure 9)",
		outliers >= 1 && outliers <= ranks/3,
		"%d of %d ranks deviate from the median level shares", outliers, ranks)
	if ranks > 8 {
		col := make([]float64, ranks)
		for rk := 0; rk < ranks; rk++ {
			col[rk] = grid[rk][1]
		}
		sort.Float64s(col)
		medianL1 := col[ranks/2]
		rep.Check("rank 8 spends unusually much time in level 1 (paper: Figure 9)",
			grid[8][1] > medianL1*1.2,
			"rank8 level1 %.2f ms vs median %.2f ms", grid[8][1], medianL1)
	}
	return rep, nil
}

// CaseStudy runs Figures 8 and 9 off one shared scheme-C profile and
// Figures 5-7 off their dedicated runs, returning all reports.
func CaseStudy(cfg CaseStudyConfig) ([]*Report, error) {
	var out []*Report
	f5, err := Figure5(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, f5)
	f6, err := Figure6(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, f6)
	f7, err := Figure7(cfg)
	if err != nil {
		return nil, err
	}
	out = append(out, f7)
	reg, recs, err := caseStudyFullProfile(cfg)
	if err != nil {
		return nil, err
	}
	f8, err := figure8From(cfg, reg, recs)
	if err != nil {
		return nil, err
	}
	out = append(out, f8)
	f9, err := figure9From(cfg, reg, recs)
	if err != nil {
		return nil, err
	}
	out = append(out, f9)
	return out, nil
}
