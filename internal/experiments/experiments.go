// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) and case study (Section VI):
//
//	Figure 3  — on-line aggregation overhead (baseline / trace / schemes A-C)
//	Table I   — snapshot and output-record counts per configuration
//	Figure 4  — weak scaling of the MPI-based query application
//	Figure 5  — sampling profile of computational kernels
//	Figure 6  — MPI function time profile
//	Figure 7  — load balance across ranks
//	Figure 8  — time per AMR level per timestep
//	Figure 9  — time per AMR level per MPI rank
//
// Each experiment returns a Report with the regenerated rows/series, which
// cmd/experiments prints and EXPERIMENTS.md records against the paper's
// published shapes.
package experiments

import (
	"bytes"
	"fmt"
	"strings"
)

// Report is one regenerated table or figure.
type Report struct {
	// ID is the experiment identifier ("fig3", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Lines holds the formatted result rows.
	Lines []string
	// ShapeChecks lists pass/fail assessments of the paper's qualitative
	// claims ("who wins, by roughly what factor").
	ShapeChecks []ShapeCheck
}

// ShapeCheck is one qualitative comparison against the paper.
type ShapeCheck struct {
	Claim string
	Pass  bool
	Note  string
}

// Addf appends a formatted line to the report.
func (r *Report) Addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Check records a shape check.
func (r *Report) Check(claim string, pass bool, noteFormat string, args ...any) {
	r.ShapeChecks = append(r.ShapeChecks, ShapeCheck{
		Claim: claim,
		Pass:  pass,
		Note:  fmt.Sprintf(noteFormat, args...),
	})
}

// String renders the report as text.
func (r *Report) String() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(&buf, l)
	}
	if len(r.ShapeChecks) > 0 {
		fmt.Fprintln(&buf, "-- shape checks --")
		for _, c := range r.ShapeChecks {
			status := "PASS"
			if !c.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(&buf, "[%s] %s (%s)\n", status, c.Claim, c.Note)
		}
	}
	return buf.String()
}

// Passed reports whether all shape checks passed.
func (r *Report) Passed() bool {
	for _, c := range r.ShapeChecks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Markdown renders the report as a Markdown section for EXPERIMENTS.md.
func (r *Report) Markdown() string {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "### %s — %s\n\n```\n", strings.ToUpper(r.ID[:1])+r.ID[1:], r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(&buf, l)
	}
	fmt.Fprint(&buf, "```\n")
	if len(r.ShapeChecks) > 0 {
		fmt.Fprint(&buf, "\n| Paper claim | Reproduced | Notes |\n|---|---|---|\n")
		for _, c := range r.ShapeChecks {
			status := "yes"
			if !c.Pass {
				status = "**no**"
			}
			fmt.Fprintf(&buf, "| %s | %s | %s |\n", c.Claim, status, c.Note)
		}
	}
	return buf.String()
}

// IDs lists the known experiment identifiers in paper order.
func IDs() []string {
	return []string{"listing1", "fig3", "table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablations"}
}
