package experiments

import (
	"fmt"
	"time"

	"caligo/caliper"
	"caligo/internal/apps/cleverleaf"
)

// The instrumentation attributes of the overhead study (Section V-B):
// seven attributes, as in the paper.
const (
	allKeysNoIter = "function,annotation,kernel,amr.level,mpi.rank,mpi.function"
	twoKeys       = "kernel,mpi.function"
	allKeys       = "function,annotation,kernel,amr.level,mpi.rank,mpi.function,iteration#mainloop"
)

// OverheadConfig parameterizes the Figure 3 / Table I experiment.
type OverheadConfig struct {
	// App is the CleverLeaf proxy configuration (the paper runs 100
	// timesteps on 36 ranks; scale to the host).
	App cleverleaf.Config
	// Runs is the number of repetitions per configuration (paper: 5).
	Runs int
	// SampleHz is the sampling frequency for the sampled modes
	// (paper: every 10 ms = 100 Hz).
	SampleHz float64
}

// DefaultOverheadConfig returns a laptop-scale configuration: runs are a
// few seconds each (the paper's runs are ~70 s on 36 cluster cores), long
// enough that per-event costs — not run-to-run noise — dominate the
// overhead percentages.
func DefaultOverheadConfig() OverheadConfig {
	app := cleverleaf.DefaultConfig()
	app.Timesteps = 60
	app.WorkScale = 8
	return OverheadConfig{App: app, Runs: 3, SampleHz: 100}
}

// OverheadRow is one configuration's measurements.
type OverheadRow struct {
	Name          string
	Mean          time.Duration
	Min, Max      time.Duration
	Snapshots     uint64  // per rank
	OutputRecords int     // per rank (0 for baseline)
	SnapshotRate  float64 // snapshots per second per rank
}

// overheadMode describes one measurement configuration.
type overheadMode struct {
	name    string
	mode    string // "baseline", "trace", "aggregate"
	key     string
	sampled bool
}

// modes lists the paper's nine configurations: baseline, then trace and
// schemes A/B/C in sampled and event-driven collection.
func modes() []overheadMode {
	return []overheadMode{
		{name: "baseline", mode: "baseline"},
		{name: "trace (sample)", mode: "trace", sampled: true},
		{name: "scheme A (sample)", mode: "aggregate", key: allKeysNoIter, sampled: true},
		{name: "scheme B (sample)", mode: "aggregate", key: twoKeys, sampled: true},
		{name: "scheme C (sample)", mode: "aggregate", key: allKeys, sampled: true},
		{name: "trace (event)", mode: "trace"},
		{name: "scheme A (event)", mode: "aggregate", key: allKeysNoIter},
		{name: "scheme B (event)", mode: "aggregate", key: twoKeys},
		{name: "scheme C (event)", mode: "aggregate", key: allKeys},
	}
}

// channelConfig builds the runtime configuration profile for a mode.
func (m overheadMode) channelConfig(sampleHz float64) caliper.Config {
	cfg := caliper.Config{}
	switch m.mode {
	case "trace":
		if m.sampled {
			cfg["services"] = "sampler,timer,trace"
		} else {
			cfg["services"] = "event,timer,trace"
		}
	case "aggregate":
		if m.sampled {
			cfg["services"] = "sampler,timer,aggregate"
		} else {
			cfg["services"] = "event,timer,aggregate"
		}
		cfg["aggregate.key"] = m.key
		cfg["aggregate.ops"] = "count,sum(time.duration)"
	}
	if m.sampled {
		cfg["sampler.frequency"] = fmt.Sprintf("%g", sampleHz)
	}
	return cfg
}

// runOnce executes the proxy under one configuration and reports wall
// time, per-rank snapshots, and per-rank output records.
func (m overheadMode) runOnce(cfg OverheadConfig) (time.Duration, uint64, int, error) {
	channels := make([]*caliper.Channel, cfg.App.Ranks)
	if m.mode != "baseline" {
		chCfg := m.channelConfig(cfg.SampleHz)
		for r := range channels {
			ch, err := caliper.NewChannel(chCfg)
			if err != nil {
				return 0, 0, 0, err
			}
			channels[r] = ch
		}
	}
	start := time.Now()
	err := cleverleaf.Run(cfg.App, func(rank int) *caliper.Thread {
		if channels[rank] == nil {
			return nil
		}
		return channels[rank].Thread()
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, 0, 0, err
	}
	var snaps uint64
	var outputs int
	for _, ch := range channels {
		if ch == nil {
			continue
		}
		snaps += ch.Snapshots()
		switch m.mode {
		case "trace":
			outputs += ch.TraceLength()
		case "aggregate":
			outputs += ch.OutputRecords()
		}
		// flush to include teardown work (and stop samplers)
		if _, err := ch.Flush(); err != nil {
			return 0, 0, 0, err
		}
	}
	n := uint64(cfg.App.Ranks)
	return elapsed, snaps / n, outputs / int(n), nil
}

// RunOverheadStudy executes all configurations and returns their rows.
// Runs are interleaved round-robin across configurations (run 1 of every
// configuration, then run 2, ...) so slow time-correlated host noise —
// a real hazard on shared machines — spreads evenly instead of biasing
// whichever configuration it coincides with.
func RunOverheadStudy(cfg OverheadConfig) ([]OverheadRow, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	ms := modes()
	rows := make([]OverheadRow, len(ms))
	totals := make([]time.Duration, len(ms))
	for run := 0; run < cfg.Runs; run++ {
		for i, m := range ms {
			elapsed, snaps, outputs, err := m.runOnce(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", m.name, err)
			}
			row := &rows[i]
			row.Name = m.name
			totals[i] += elapsed
			if run == 0 || elapsed < row.Min {
				row.Min = elapsed
			}
			if elapsed > row.Max {
				row.Max = elapsed
			}
			row.Snapshots = snaps
			row.OutputRecords = outputs
			if elapsed > 0 {
				row.SnapshotRate = float64(snaps) / elapsed.Seconds()
			}
		}
	}
	for i := range rows {
		rows[i].Mean = totals[i] / time.Duration(cfg.Runs)
	}
	return rows, nil
}

// Figure3 runs the overhead study and formats it as the paper's Figure 3.
func Figure3(cfg OverheadConfig) (*Report, error) {
	rows, err := RunOverheadStudy(cfg)
	if err != nil {
		return nil, err
	}
	return Figure3FromRows(rows)
}

// Figure3FromRows formats pre-measured overhead rows as Figure 3
// (cmd/experiments measures once for both Figure 3 and Table I).
func Figure3FromRows(rows []OverheadRow) (*Report, error) {
	r := &Report{ID: "fig3", Title: "On-line aggregation overhead (CleverLeaf proxy)"}
	// overhead is computed on the minimum over runs — the standard
	// noise-robust statistic for wall-clock comparisons on shared hosts
	base := rows[0].Min
	r.Addf("%-20s %12s %12s %12s %10s", "config", "mean", "min", "max", "overhead")
	for _, row := range rows {
		over := float64(row.Min-base) / float64(base) * 100
		r.Addf("%-20s %12v %12v %12v %9.1f%%", row.Name, row.Mean.Round(time.Millisecond),
			row.Min.Round(time.Millisecond), row.Max.Round(time.Millisecond), over)
	}

	get := func(name string) OverheadRow {
		for _, row := range rows {
			if row.Name == name {
				return row
			}
		}
		return OverheadRow{}
	}
	over := func(name string) float64 {
		return float64(get(name).Min-base) / float64(base) * 100
	}
	// Paper: sampled overheads are small (~0.85%) and indistinguishable
	// across trace/schemes; event-mode overheads are slightly higher
	// (2-3.3%); scheme C is the costliest aggregation. Absolute
	// percentages here sit above the paper's (Go annotations cost more
	// than the C++ runtime's, and shared-host noise floors are a few
	// percent), so the checks compare configurations against each other
	// with a noise margin rather than against the paper's absolute
	// numbers; see EXPERIMENTS.md for the discussion.
	sampledMax := over("trace (sample)")
	for _, n := range []string{"scheme A (sample)", "scheme B (sample)", "scheme C (sample)"} {
		if o := over(n); o > sampledMax {
			sampledMax = o
		}
	}
	eventMax := over("trace (event)")
	for _, n := range []string{"scheme A (event)", "scheme B (event)", "scheme C (event)"} {
		if o := over(n); o > eventMax {
			eventMax = o
		}
	}
	r.Check("sampled-mode overheads are small (paper: <1%)",
		sampledMax < 10, "max sampled overhead %.1f%%", sampledMax)
	r.Check("event-mode overhead exceeds sampled-mode overhead (paper: 2-3.3%% vs 0.85%%)",
		eventMax > sampledMax, "event max %.1f%% vs sampled max %.1f%%", eventMax, sampledMax)
	r.Check("scheme C (event) is not cheaper than scheme B (event), within noise",
		float64(get("scheme C (event)").Min) >= float64(get("scheme B (event)").Min)*0.95,
		"C=%v B=%v", get("scheme C (event)").Min, get("scheme B (event)").Min)
	return r, nil
}

// TableI runs the overhead study and formats the paper's Table I:
// snapshots and output records per process for each configuration.
func TableI(cfg OverheadConfig) (*Report, error) {
	rows, err := RunOverheadStudy(cfg)
	if err != nil {
		return nil, err
	}
	return TableIFromRows(rows), nil
}

// TableIFromRows formats pre-measured rows (shared with cmd/experiments,
// which runs the study once for both fig3 and table1).
func TableIFromRows(rows []OverheadRow) *Report {
	r := &Report{ID: "table1", Title: "Snapshots and output records per process"}
	r.Addf("%-20s %12s %16s %14s", "config", "snapshots", "output records", "snapshots/s")
	byName := map[string]OverheadRow{}
	for _, row := range rows {
		if row.Name == "baseline" {
			continue
		}
		r.Addf("%-20s %12d %16d %14.0f", row.Name, row.Snapshots, row.OutputRecords, row.SnapshotRate)
		byName[row.Name] = row
	}
	tr, a, b, c := byName["trace (event)"], byName["scheme A (event)"],
		byName["scheme B (event)"], byName["scheme C (event)"]
	r.Check("trace stores every snapshot (output records == snapshots)",
		tr.OutputRecords == int(tr.Snapshots),
		"%d records / %d snapshots", tr.OutputRecords, tr.Snapshots)
	r.Check("scheme B produces fewer records than scheme A (paper: 26 vs 266)",
		b.OutputRecords < a.OutputRecords, "B=%d A=%d", b.OutputRecords, a.OutputRecords)
	r.Check("scheme C produces far more records than scheme A (paper: 6749 vs 266)",
		c.OutputRecords > 4*a.OutputRecords, "C=%d A=%d", c.OutputRecords, a.OutputRecords)
	r.Check("scheme C output is much smaller than the trace (paper: 32x smaller)",
		c.OutputRecords*2 < tr.OutputRecords,
		"C=%d trace=%d (%.0fx smaller)", c.OutputRecords, tr.OutputRecords,
		float64(tr.OutputRecords)/float64(max(1, c.OutputRecords)))
	return r
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
