//go:build !race

// Package testutil holds small shared test helpers.
package testutil

// RaceEnabled reports whether the binary was built with -race. Allocation
// budget tests use it to skip themselves: the race runtime instruments
// allocations, so testing.AllocsPerRun budgets only hold in normal builds.
const RaceEnabled = false
