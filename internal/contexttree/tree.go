// Package contexttree implements Caliper's generic context tree: a tree of
// (attribute, value) nodes used to compress snapshot records and to encode
// metadata in the .cali stream format.
//
// Each node represents one attribute:value pair; a path from the root to a
// node represents an ordered list of such pairs. Snapshot records then only
// need to store a single node reference instead of the full list, which is
// the compression scheme the paper's runtime relies on ("a compressed copy
// of the current blackboard contents", Section IV-A).
package contexttree

import (
	"fmt"
	"sync"

	"caligo/internal/attr"
)

// NodeID references a node within a Tree. IDs are dense, starting at 0.
type NodeID int32

// InvalidNode marks "no node" (an empty path).
const InvalidNode NodeID = -1

// node is the internal tree node representation. Children are kept in a
// per-node map keyed by (attribute, value) for O(1) child lookup.
type node struct {
	id     NodeID
	parent NodeID
	attr   attr.ID
	value  attr.Variant
}

type childKey struct {
	attr  attr.ID
	value attr.Variant
}

// Tree is an append-only context tree. Nodes are never removed, so NodeIDs
// remain valid for the lifetime of the tree. All methods are safe for
// concurrent use.
type Tree struct {
	mu       sync.RWMutex
	nodes    []node
	children map[NodeID]map[childKey]NodeID
}

// New returns an empty context tree.
func New() *Tree {
	return &Tree{children: map[NodeID]map[childKey]NodeID{}}
}

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.nodes)
}

// GetChild finds or creates the child of parent carrying (a, v) and returns
// its id. Pass InvalidNode as parent for a root-level node.
func (t *Tree) GetChild(parent NodeID, a attr.Attribute, v attr.Variant) NodeID {
	key := childKey{attr: a.ID(), value: v}

	t.mu.RLock()
	if m, ok := t.children[parent]; ok {
		if id, ok := m[key]; ok {
			t.mu.RUnlock()
			return id
		}
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.children[parent]
	if !ok {
		m = map[childKey]NodeID{}
		t.children[parent] = m
	}
	if id, ok := m[key]; ok { // lost the race; someone created it
		return id
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, node{id: id, parent: parent, attr: a.ID(), value: v})
	m[key] = id
	return id
}

// GetPath finds or creates the node representing the path of entries below
// parent, chaining one node per entry, and returns the deepest node.
func (t *Tree) GetPath(parent NodeID, entries []attr.Entry) NodeID {
	n := parent
	for _, e := range entries {
		n = t.GetChild(n, e.Attr, e.Value)
	}
	return n
}

// Parent returns the parent node id, or InvalidNode for roots.
func (t *Tree) Parent(id NodeID) NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.nodes) {
		return InvalidNode
	}
	return t.nodes[id].parent
}

// Entry returns the (attribute id, value) pair stored at a node.
func (t *Tree) Entry(id NodeID) (attr.ID, attr.Variant, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || int(id) >= len(t.nodes) {
		return attr.InvalidID, attr.Variant{}, fmt.Errorf("contexttree: invalid node id %d", id)
	}
	n := t.nodes[id]
	return n.attr, n.value, nil
}

// Path returns the entries on the path from the root down to id, in
// root-to-node order, resolving attribute ids through reg.
func (t *Tree) Path(id NodeID, reg *attr.Registry) ([]attr.Entry, error) {
	var rev []attr.Entry
	t.mu.RLock()
	for id != InvalidNode {
		if id < 0 || int(id) >= len(t.nodes) {
			t.mu.RUnlock()
			return nil, fmt.Errorf("contexttree: invalid node id %d", id)
		}
		n := t.nodes[id]
		a, ok := reg.Get(n.attr)
		if !ok {
			t.mu.RUnlock()
			return nil, fmt.Errorf("contexttree: node %d references unknown attribute %d", id, n.attr)
		}
		rev = append(rev, attr.Entry{Attr: a, Value: n.value})
		id = n.parent
	}
	t.mu.RUnlock()
	// reverse to root-first order
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// FindInPath walks from id toward the root and returns the first (deepest)
// value recorded for attribute a, if any.
func (t *Tree) FindInPath(id NodeID, a attr.ID) (attr.Variant, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for id != InvalidNode && int(id) < len(t.nodes) && id >= 0 {
		n := t.nodes[id]
		if n.attr == a {
			return n.value, true
		}
		id = n.parent
	}
	return attr.Variant{}, false
}

// ValuesInPath walks from id toward the root and returns all values
// recorded for attribute a, ordered root-first (outermost first).
func (t *Tree) ValuesInPath(id NodeID, a attr.ID) []attr.Variant {
	var rev []attr.Variant
	t.mu.RLock()
	for id != InvalidNode && int(id) < len(t.nodes) && id >= 0 {
		n := t.nodes[id]
		if n.attr == a {
			rev = append(rev, n.value)
		}
		id = n.parent
	}
	t.mu.RUnlock()
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Node is an exported view of one tree node, used by encoders.
type Node struct {
	ID     NodeID
	Parent NodeID
	Attr   attr.ID
	Value  attr.Variant
}

// NodesFrom returns exported views of all nodes with id >= start, in id
// order. Encoders use this to write only nodes added since the last flush.
func (t *Tree) NodesFrom(start NodeID) []Node {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if start < 0 {
		start = 0
	}
	if int(start) >= len(t.nodes) {
		return nil
	}
	out := make([]Node, 0, len(t.nodes)-int(start))
	for _, n := range t.nodes[start:] {
		out = append(out, Node{ID: n.id, Parent: n.parent, Attr: n.attr, Value: n.value})
	}
	return out
}

// AddRaw appends a node with explicit parent/attribute/value, used by
// decoders reconstructing a tree from a stream. The node is registered in
// the child index so later GetChild calls can reuse it. It returns the new
// node's id. Parent must already exist (or be InvalidNode).
func (t *Tree) AddRaw(parent NodeID, a attr.ID, v attr.Variant) (NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if parent != InvalidNode && (parent < 0 || int(parent) >= len(t.nodes)) {
		return InvalidNode, fmt.Errorf("contexttree: AddRaw: parent %d does not exist", parent)
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, node{id: id, parent: parent, attr: a, value: v})
	m, ok := t.children[parent]
	if !ok {
		m = map[childKey]NodeID{}
		t.children[parent] = m
	}
	key := childKey{attr: a, value: v}
	if _, exists := m[key]; !exists {
		m[key] = id
	}
	return id, nil
}
