package contexttree

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"caligo/internal/attr"
)

func testReg(t *testing.T) (*attr.Registry, attr.Attribute, attr.Attribute, attr.Attribute) {
	t.Helper()
	reg := attr.NewRegistry()
	fn := reg.MustCreate("function", attr.String, attr.Nested)
	loop := reg.MustCreate("loop", attr.String, attr.Nested)
	iter := reg.MustCreate("iteration", attr.Int, 0)
	return reg, fn, loop, iter
}

func TestGetChildDeduplicates(t *testing.T) {
	_, fn, _, _ := testReg(t)
	tree := New()
	a := tree.GetChild(InvalidNode, fn, attr.StringV("main"))
	b := tree.GetChild(InvalidNode, fn, attr.StringV("main"))
	if a != b {
		t.Errorf("same (parent,attr,value) produced different nodes: %d vs %d", a, b)
	}
	c := tree.GetChild(InvalidNode, fn, attr.StringV("foo"))
	if c == a {
		t.Error("different values must produce different nodes")
	}
	d := tree.GetChild(a, fn, attr.StringV("foo"))
	if d == c {
		t.Error("same pair under different parents must produce different nodes")
	}
	if tree.Len() != 3 {
		t.Errorf("Len = %d, want 3", tree.Len())
	}
}

func TestPathRoundTrip(t *testing.T) {
	reg, fn, loop, iter := testReg(t)
	tree := New()
	entries := []attr.Entry{
		{Attr: fn, Value: attr.StringV("main")},
		{Attr: loop, Value: attr.StringV("mainloop")},
		{Attr: iter, Value: attr.IntV(17)},
		{Attr: fn, Value: attr.StringV("foo")},
	}
	n := tree.GetPath(InvalidNode, entries)
	got, err := tree.Path(n, reg)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if len(got) != len(entries) {
		t.Fatalf("Path len = %d, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Attr.ID() != entries[i].Attr.ID() || got[i].Value != entries[i].Value {
			t.Errorf("Path[%d] = %v, want %v", i, got[i], entries[i])
		}
	}
}

func TestPathOfInvalidNode(t *testing.T) {
	reg, _, _, _ := testReg(t)
	tree := New()
	p, err := tree.Path(InvalidNode, reg)
	if err != nil || len(p) != 0 {
		t.Errorf("Path(InvalidNode) = %v,%v; want empty,nil", p, err)
	}
	if _, err := tree.Path(42, reg); err == nil {
		t.Error("Path of nonexistent node should error")
	}
}

func TestFindInPath(t *testing.T) {
	_, fn, loop, iter := testReg(t)
	tree := New()
	n := tree.GetPath(InvalidNode, []attr.Entry{
		{Attr: fn, Value: attr.StringV("main")},
		{Attr: loop, Value: attr.StringV("l")},
		{Attr: fn, Value: attr.StringV("foo")},
	})
	v, ok := tree.FindInPath(n, fn.ID())
	if !ok || v.String() != "foo" {
		t.Errorf("FindInPath(fn) = %v,%v; want foo (deepest wins)", v, ok)
	}
	v, ok = tree.FindInPath(n, loop.ID())
	if !ok || v.String() != "l" {
		t.Errorf("FindInPath(loop) = %v,%v", v, ok)
	}
	if _, ok := tree.FindInPath(n, iter.ID()); ok {
		t.Error("FindInPath should miss for absent attribute")
	}
}

func TestValuesInPath(t *testing.T) {
	_, fn, _, _ := testReg(t)
	tree := New()
	n := tree.GetPath(InvalidNode, []attr.Entry{
		{Attr: fn, Value: attr.StringV("main")},
		{Attr: fn, Value: attr.StringV("foo")},
		{Attr: fn, Value: attr.StringV("bar")},
	})
	vals := tree.ValuesInPath(n, fn.ID())
	if len(vals) != 3 || vals[0].String() != "main" || vals[2].String() != "bar" {
		t.Errorf("ValuesInPath = %v, want [main foo bar]", vals)
	}
}

func TestEntryAndParent(t *testing.T) {
	_, fn, _, _ := testReg(t)
	tree := New()
	root := tree.GetChild(InvalidNode, fn, attr.StringV("main"))
	child := tree.GetChild(root, fn, attr.StringV("foo"))
	aid, v, err := tree.Entry(child)
	if err != nil || aid != fn.ID() || v.String() != "foo" {
		t.Errorf("Entry = %v,%v,%v", aid, v, err)
	}
	if tree.Parent(child) != root {
		t.Errorf("Parent(child) = %d, want %d", tree.Parent(child), root)
	}
	if tree.Parent(root) != InvalidNode {
		t.Error("root parent should be InvalidNode")
	}
	if tree.Parent(99) != InvalidNode {
		t.Error("out-of-range parent should be InvalidNode")
	}
	if _, _, err := tree.Entry(99); err == nil {
		t.Error("Entry out-of-range should error")
	}
}

func TestNodesFromAndAddRaw(t *testing.T) {
	_, fn, loop, _ := testReg(t)
	tree := New()
	tree.GetChild(InvalidNode, fn, attr.StringV("a"))
	n1 := tree.GetChild(InvalidNode, loop, attr.StringV("b"))
	nodes := tree.NodesFrom(0)
	if len(nodes) != 2 {
		t.Fatalf("NodesFrom(0) len = %d, want 2", len(nodes))
	}
	nodes = tree.NodesFrom(n1)
	if len(nodes) != 1 || nodes[0].Value.String() != "b" {
		t.Errorf("NodesFrom(%d) = %v", n1, nodes)
	}
	if got := tree.NodesFrom(100); got != nil {
		t.Errorf("NodesFrom past end = %v, want nil", got)
	}
	if got := tree.NodesFrom(-5); len(got) != 2 {
		t.Errorf("NodesFrom(-5) len = %d, want 2", len(got))
	}

	// Rebuild via AddRaw in a fresh tree
	tree2 := New()
	for _, n := range tree.NodesFrom(0) {
		id, err := tree2.AddRaw(n.Parent, n.Attr, n.Value)
		if err != nil {
			t.Fatalf("AddRaw: %v", err)
		}
		if id != n.ID {
			t.Errorf("AddRaw id = %d, want %d", id, n.ID)
		}
	}
	// Child index must be usable: GetChild should find the existing node.
	if got := tree2.GetChild(InvalidNode, fn, attr.StringV("a")); got != 0 {
		t.Errorf("GetChild after AddRaw = %d, want 0", got)
	}
	if _, err := tree2.AddRaw(57, fn.ID(), attr.StringV("x")); err == nil {
		t.Error("AddRaw with missing parent should error")
	}
}

func TestConcurrentGetChild(t *testing.T) {
	_, fn, _, iter := testReg(t)
	tree := New()
	var wg sync.WaitGroup
	results := make([][]NodeID, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids := make([]NodeID, 50)
			for i := 0; i < 50; i++ {
				parent := tree.GetChild(InvalidNode, fn, attr.StringV(fmt.Sprintf("f%d", i%10)))
				ids[i] = tree.GetChild(parent, iter, attr.IntV(int64(i%5)))
			}
			results[g] = ids
		}(g)
	}
	wg.Wait()
	// All goroutines must agree on node ids for identical paths.
	for g := 1; g < 8; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got node %d for path %d, goroutine 0 got %d",
					g, results[g][i], i, results[0][i])
			}
		}
	}
	// 10 parents, and since i%5 is determined by i%10, one child each.
	if tree.Len() != 20 {
		t.Errorf("Len = %d, want 20", tree.Len())
	}
}

func TestQuickPathRoundTrip(t *testing.T) {
	reg := attr.NewRegistry()
	attrs := []attr.Attribute{
		reg.MustCreate("a", attr.String, 0),
		reg.MustCreate("b", attr.Int, 0),
		reg.MustCreate("c", attr.Float, 0),
	}
	tree := New()
	f := func(sel []uint8, ival int64, sval string) bool {
		if len(sel) > 12 {
			sel = sel[:12]
		}
		var entries []attr.Entry
		for _, s := range sel {
			a := attrs[int(s)%len(attrs)]
			var v attr.Variant
			switch a.Type() {
			case attr.String:
				v = attr.StringV(sval)
			case attr.Int:
				v = attr.IntV(ival)
			default:
				v = attr.FloatV(float64(ival) / 2)
			}
			entries = append(entries, attr.Entry{Attr: a, Value: v})
		}
		n := tree.GetPath(InvalidNode, entries)
		got, err := tree.Path(n, reg)
		if err != nil || len(got) != len(entries) {
			return false
		}
		for i := range entries {
			if got[i].Attr.ID() != entries[i].Attr.ID() || got[i].Value != entries[i].Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
