module caligo

go 1.22
