package caligo

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"caligo/caliper"
	"caligo/calql"
	"caligo/internal/apps/cleverleaf"
	"caligo/internal/obs"
	"caligo/internal/telemetry"
)

// TestEndpointSmoke is the ops-surface smoke test `make check` runs: it
// starts a real debug server, drives a sharded query with a slow-query
// threshold armed, then scrapes /debug/metrics, /debug/queries, and
// /debug/log over HTTP and validates the bodies with the same parsers
// cali-top uses.
func TestEndpointSmoke(t *testing.T) {
	prevTel := telemetry.SetEnabled(true)
	prevLog := obs.SetLogEnabled(true)
	prevSlow := obs.SetSlowQueryThreshold(time.Nanosecond) // everything is slow
	t.Cleanup(func() {
		telemetry.SetEnabled(prevTel)
		obs.SetLogEnabled(prevLog)
		obs.SetSlowQueryThreshold(prevSlow)
	})

	srv, err := caliper.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// history recorder armed before the workload: its baseline predates
	// the query, so the captured window carries the query counters
	if err := caliper.StartHistory(caliper.HistoryOptions{
		Dir: t.TempDir(), Interval: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(caliper.StopHistory)

	// drive the engine: record per-rank profiles, query them sharded
	dir := t.TempDir()
	app := cleverleaf.Config{Ranks: 4, Timesteps: 4, Levels: 2, WorkScale: 1, VirtualTime: true}
	files := writeProfiles(t, dir, app, caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel,mpi.rank",
		"aggregate.ops": "count,sum(time.duration)",
	})
	const queryText = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel"
	res, err := calql.QueryFilesJobs(queryText, files, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query returned no rows")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	// /debug/metrics parses as OpenMetrics and carries the query metrics,
	// the runtime gauges, and full histogram series
	metrics, err := obs.ParseMetrics(strings.NewReader(get("/debug/metrics")))
	if err != nil {
		t.Fatalf("/debug/metrics does not parse: %v", err)
	}
	if !metrics.EOF {
		t.Error("/debug/metrics missing # EOF terminator")
	}
	for _, family := range []string{
		"caligo_query_queries", "caligo_query_ns", "caligo_query_records",
		"caligo_runtime_heap_alloc_bytes", "caligo_runtime_goroutines",
	} {
		if _, ok := metrics.Families[family]; !ok {
			t.Errorf("/debug/metrics missing family %s", family)
		}
	}
	if f := metrics.Families["caligo_query_ns"]; f != nil {
		if f.Type != "histogram" {
			t.Errorf("caligo_query_ns type = %s, want histogram", f.Type)
		}
		count, ok := f.HistCount()
		if !ok || count < 1 {
			t.Errorf("caligo_query_ns _count = %v (ok=%v), want >= 1", count, ok)
		}
		if _, ok := f.HistSum(); !ok {
			t.Error("caligo_query_ns missing _sum")
		}
		hasBucket := false
		for _, s := range f.Samples {
			if s.Name == "caligo_query_ns_bucket" {
				hasBucket = true
				break
			}
		}
		if !hasBucket {
			t.Error("caligo_query_ns missing _bucket series")
		}
	}

	// /debug/queries carries the attributed run with shard accounting
	stats, err := obs.ParseQueryStats(strings.NewReader(get("/debug/queries")))
	if err != nil {
		t.Fatalf("/debug/queries does not parse: %v", err)
	}
	var found *obs.QueryStats
	for i := range stats.Queries {
		if stats.Queries[i].Text == queryText {
			found = &stats.Queries[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("query not in /debug/queries (total=%d)", stats.Total)
	}
	if found.Engine != "sharded" || found.Shards != 4 || found.Records == 0 || !found.Slow {
		t.Errorf("attribution record: engine=%s shards=%d records=%d slow=%v",
			found.Engine, found.Shards, found.Records, found.Slow)
	}

	// /debug/log carries the slow-query flight-recorder entry with the
	// CalQL text and a phase breakdown
	logBody := get("/debug/log")
	slowSeen := false
	for _, line := range strings.Split(strings.TrimSpace(logBody), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("/debug/log line is not JSON: %v\n%s", err, line)
		}
		if rec["msg"] == "slow query" && rec["calql"] == queryText {
			slowSeen = true
			if _, ok := rec["phase.merge.ns"]; !ok {
				t.Errorf("slow-query entry missing merge phase: %v", rec)
			}
		}
	}
	if !slowSeen {
		t.Errorf("no slow-query entry for %q in /debug/log:\n%s", queryText, logBody)
	}

	// /debug/history serves the captured window with the query telemetry
	if _, err := caliper.HistoryRecorder().CaptureNow(); err != nil {
		t.Fatal(err)
	}
	var hist struct {
		Count   int `json:"count"`
		Windows []struct {
			Metrics []struct {
				Name string `json:"name"`
			} `json:"metrics"`
		} `json:"windows"`
	}
	if err := json.Unmarshal([]byte(get("/debug/history")), &hist); err != nil {
		t.Fatalf("/debug/history does not parse: %v", err)
	}
	if hist.Count < 1 {
		t.Fatal("/debug/history has no windows after a capture")
	}
	querySeen := false
	for _, w := range hist.Windows {
		for _, m := range w.Metrics {
			if m.Name == "caligo.query.queries" {
				querySeen = true
			}
		}
	}
	if !querySeen {
		t.Error("/debug/history windows missing the caligo.query.queries delta")
	}

	// /debug/cluster is valid JSON with the merged-view fields
	var cluster map[string]any
	if err := json.Unmarshal([]byte(get("/debug/cluster")), &cluster); err != nil {
		t.Fatalf("/debug/cluster does not parse: %v", err)
	}
	for _, field := range []string{"ranks", "slowest_rank", "metrics"} {
		if _, ok := cluster[field]; !ok {
			t.Errorf("/debug/cluster missing %q field", field)
		}
	}
}
