// Package calql is the public interface to the aggregation description
// language and query engine: parse queries in the SQL-like language of
// Section III-B and run them over .cali datasets — serially or with the
// emulated-MPI parallel query application of Section IV-C — or over
// records flushed from a live caliper.Channel (on-line analytical
// aggregation).
package calql

import (
	"fmt"
	"io"
	"os"

	"caligo/caliper"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	internalcalql "caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/mpi"
	"caligo/internal/pquery"
	"caligo/internal/query"
	"caligo/internal/snapshot"
)

// Query is a parsed query in the aggregation description language.
type Query = internalcalql.Query

// Parse parses a query, e.g.
//
//	AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
func Parse(text string) (*Query, error) { return internalcalql.Parse(text) }

// MustParse is Parse panicking on error, for static query definitions.
func MustParse(text string) *Query { return internalcalql.MustParse(text) }

// Resultset holds query output rows together with the attribute registry
// they resolve against.
type Resultset struct {
	Rows  []snapshot.FlatRecord
	Reg   *attr.Registry
	Query *Query
}

// Render writes the resultset in the query's FORMAT (default: table).
func (rs *Resultset) Render(w io.Writer) error {
	eng, err := query.New(rs.Query, rs.Reg)
	if err != nil {
		return err
	}
	return eng.Write(w, rs.Rows)
}

// String renders the resultset as text.
func (rs *Resultset) String() string {
	var sb stringsBuilder
	if err := rs.Render(&sb); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return sb.String()
}

// stringsBuilder avoids importing strings just for Builder.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }

// QueryFiles runs a query serially over the given .cali files, merging
// them into one dataset first (the off-line analytical aggregation path).
func QueryFiles(queryText string, files []string) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	reg := attr.NewRegistry()
	tree := contexttree.New()
	eng, err := query.New(q, reg)
	if err != nil {
		return nil, err
	}
	for _, fn := range files {
		f, err := os.Open(fn)
		if err != nil {
			return nil, err
		}
		rd := calformat.NewReader(f, reg, tree)
		for {
			rec, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: %w", fn, err)
			}
			if err := eng.Process(rec); err != nil {
				f.Close()
				return nil, err
			}
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	rows, err := eng.Results()
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: reg, Query: q}, nil
}

// ParallelTiming re-exports the parallel query phase breakdown.
type ParallelTiming = pquery.Timing

// ParallelResult bundles a parallel query's resultset with its timing.
type ParallelResult struct {
	*Resultset
	Timing           ParallelTiming
	RecordsProcessed uint64
}

// QueryFilesParallel runs a query with the emulated-MPI parallel query
// application: ranks MPI processes are spawned, files are distributed
// round-robin (one subset per rank, as in the paper's weak-scaling setup),
// each rank aggregates its subset locally, and the partial aggregation
// databases are combined in a logarithmic tree reduction.
func QueryFilesParallel(queryText string, files []string, ranks int) (*ParallelResult, error) {
	if ranks <= 0 {
		ranks = len(files)
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("calql: no input files")
	}
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	provider := func(rank int) (io.ReadCloser, error) {
		// round-robin assignment: rank r reads files r, r+ranks, ...
		var readers []io.Reader
		var closers []io.Closer
		for i := rank; i < len(files); i += ranks {
			f, err := os.Open(files[i])
			if err != nil {
				for _, c := range closers {
					c.Close()
				}
				return nil, err
			}
			readers = append(readers, f)
			closers = append(closers, f)
		}
		if len(readers) == 0 {
			return nil, nil
		}
		return &multiReadCloser{r: io.MultiReader(readers...), closers: closers}, nil
	}
	res, err := pquery.Run(world, queryText, provider)
	if err != nil {
		return nil, err
	}
	return &ParallelResult{
		Resultset:        &Resultset{Rows: res.Rows, Reg: res.Reg, Query: res.Query},
		Timing:           res.Timing,
		RecordsProcessed: res.RecordsProcessed,
	}, nil
}

type multiReadCloser struct {
	r       io.Reader
	closers []io.Closer
}

func (m *multiReadCloser) Read(p []byte) (int, error) { return m.r.Read(p) }

func (m *multiReadCloser) Close() error {
	var first error
	for _, c := range m.closers {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// QueryChannel flushes a live measurement channel and runs a query over
// the flushed records (on-line analytical aggregation). The channel's
// registry is shared, so result attributes resolve consistently.
func QueryChannel(queryText string, ch *caliper.Channel) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	eng, err := query.New(q, ch.Registry())
	if err != nil {
		return nil, err
	}
	if err := ch.FlushEmit(eng.Process); err != nil {
		return nil, err
	}
	rows, err := eng.Results()
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: ch.Registry(), Query: q}, nil
}

// QueryRecords runs a query over in-memory records resolved against reg.
func QueryRecords(queryText string, reg *attr.Registry, recs []snapshot.FlatRecord) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	rows, err := query.Run(q, reg, recs)
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: reg, Query: q}, nil
}
