// Package calql is the public interface to the aggregation description
// language and query engine: parse queries in the SQL-like language of
// Section III-B and run them over .cali datasets — serially or with the
// emulated-MPI parallel query application of Section IV-C — or over
// records flushed from a live caliper.Channel (on-line analytical
// aggregation).
package calql

import (
	"fmt"
	"io"
	"os"
	"time"

	"caligo/caliper"
	"caligo/internal/attr"
	internalcalql "caligo/internal/calql"
	"caligo/internal/contexttree"
	"caligo/internal/mpi"
	"caligo/internal/obs"
	"caligo/internal/pquery"
	"caligo/internal/qcache"
	"caligo/internal/query"
	"caligo/internal/snapshot"
	"caligo/internal/trace"
)

// Query is a parsed query in the aggregation description language.
type Query = internalcalql.Query

// ExplainMode marks EXPLAIN / EXPLAIN ANALYZE statements on a Query.
type ExplainMode = internalcalql.ExplainMode

// Explain modes (the Query.Explain field).
const (
	ExplainNone    = internalcalql.ExplainNone
	ExplainPlan    = internalcalql.ExplainPlan
	ExplainAnalyze = internalcalql.ExplainAnalyze
)

// Parse parses a query, e.g.
//
//	AGGREGATE count, sum(time.duration) GROUP BY function, loop.iteration
func Parse(text string) (*Query, error) { return internalcalql.Parse(text) }

// MustParse is Parse panicking on error, for static query definitions.
func MustParse(text string) *Query { return internalcalql.MustParse(text) }

// Resultset holds query output rows together with the attribute registry
// they resolve against.
type Resultset struct {
	Rows  []snapshot.FlatRecord
	Reg   *attr.Registry
	Query *Query
}

// Render writes the resultset in the query's FORMAT (default: table).
func (rs *Resultset) Render(w io.Writer) error {
	eng, err := query.New(rs.Query, rs.Reg)
	if err != nil {
		return err
	}
	return eng.Write(w, rs.Rows)
}

// String renders the resultset as text.
func (rs *Resultset) String() string {
	var sb stringsBuilder
	if err := rs.Render(&sb); err != nil {
		return fmt.Sprintf("<error: %v>", err)
	}
	return sb.String()
}

// stringsBuilder avoids importing strings just for Builder.
type stringsBuilder struct{ buf []byte }

func (b *stringsBuilder) Write(p []byte) (int, error) {
	b.buf = append(b.buf, p...)
	return len(p), nil
}
func (b *stringsBuilder) String() string { return string(b.buf) }

// Options control query execution across the QueryFiles* entry points.
// The zero value is the default behavior.
type Options struct {
	// NoIndex disables sidecar index use: every file is fully decoded,
	// with no file/block pruning and no projection pushdown. The output is
	// byte-identical either way; the flag exists for comparison and as an
	// escape hatch.
	NoIndex bool
	// CacheDir enables the per-file aggregate state cache (internal/
	// qcache) rooted at the given directory. Empty falls back to the
	// CALIGO_CACHE environment variable; if that is empty too, caching is
	// off. The output is byte-identical either way.
	CacheDir string
	// NoCache force-disables the aggregate cache, overriding CacheDir and
	// CALIGO_CACHE.
	NoCache bool
}

// cacheDir resolves the effective cache directory ("" = caching off).
func (o Options) cacheDir() string {
	if o.NoCache {
		return ""
	}
	if o.CacheDir != "" {
		return o.CacheDir
	}
	return os.Getenv("CALIGO_CACHE")
}

func (o Options) scan() query.ScanOptions {
	so := query.ScanOptions{UseIndex: !o.NoIndex}
	if dir := o.cacheDir(); dir != "" {
		// an unopenable cache directory silently disables caching: the
		// query must answer regardless
		if store, err := qcache.Shared(dir); err == nil {
			so.Cache = store
		}
	}
	return so
}

// QueryFiles runs a query serially over the given .cali files, merging
// them into one dataset first (the off-line analytical aggregation path).
// Sidecar block indexes (see calformat.BuildFileIndex) are consulted when
// present: files and blocks the WHERE clause cannot match are skipped,
// and aggregating queries decode only the attributes they reference.
func QueryFiles(queryText string, files []string) (*Resultset, error) {
	return QueryFilesOpt(queryText, files, Options{})
}

// QueryFilesOpt is QueryFiles with explicit execution options.
func QueryFilesOpt(queryText string, files []string, opts Options) (*Resultset, error) {
	aq := obs.BeginQuery(queryText, "serial")
	rs, err := queryFilesObs(queryText, files, opts, aq)
	if rs != nil {
		aq.SetRows(len(rs.Rows))
	}
	aq.End(err)
	return rs, err
}

// queryFilesObs is the serial execution body, accounting into aq (nil
// disables attribution).
func queryFilesObs(queryText string, files []string, opts Options, aq *obs.ActiveQuery) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	reg := attr.NewRegistry()
	tree := contexttree.New()
	eng, err := query.New(q, reg)
	if err != nil {
		return nil, err
	}
	// Records stream straight from the decoder into the engine through one
	// reused record (no whole-dataset buffering). The read and aggregate
	// spans still both appear — aggregate nested inside read — so EXPLAIN
	// ANALYZE sees the same phase structure as the parallel path. The scan
	// plan emits its own query.index spans alongside.
	rsp := trace.Begin("query.read")
	asp := trace.Begin("query.aggregate")
	if qid := aq.ID(); qid != 0 {
		rsp.ArgInt("qid", int64(qid))
		asp.ArgInt("qid", int64(qid))
	}
	var readStart time.Time
	if aq != nil {
		readStart = time.Now()
	}
	plan := query.NewScanPlan(q, opts.scan())
	nrecs, bytesRead, err := plan.ScanFiles(eng, files, reg, tree)
	if err != nil {
		asp.End()
		rsp.End()
		return nil, err
	}
	asp.ArgInt("records_in", int64(nrecs))
	asp.ArgInt("records_out", int64(eng.Size()))
	asp.End()
	rsp.ArgInt("files", int64(len(files)))
	rsp.ArgInt("records", int64(nrecs))
	rsp.ArgInt("bytes", bytesRead)
	rsp.End()
	var postStart time.Time
	if aq != nil {
		aq.Phase("read+aggregate", time.Since(readStart))
		aq.AddRecords(uint64(nrecs))
		aq.AddBytes(uint64(bytesRead))
		if st := plan.Stats(); st.CacheHits+st.CacheMisses+st.CacheIncremental > 0 {
			aq.CacheStats(uint64(st.CacheHits), uint64(st.CacheMisses), uint64(st.CacheIncremental))
		}
		postStart = time.Now()
	}
	rows, err := eng.Results()
	if aq != nil {
		aq.Phase("postprocess", time.Since(postStart))
	}
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: reg, Query: q}, nil
}

// QueryFilesJobs runs a query over the given .cali files with up to jobs
// in-process read+aggregate workers (sharded multi-core execution): files
// are fanned out round-robin, each worker aggregates its subset into a
// private database shard, and the shards are folded together with a
// pairwise merge tree before the shared postprocess tail. The output is
// byte-identical to QueryFiles. jobs <= 0 selects one worker per CPU;
// jobs == 1 shares the code path but runs a single worker.
func QueryFilesJobs(queryText string, files []string, jobs int) (*Resultset, error) {
	return QueryFilesJobsOpt(queryText, files, jobs, Options{})
}

// QueryFilesJobsOpt is QueryFilesJobs with explicit execution options.
// With indexing enabled (the default), indexed files additionally shard
// internally: block ranges of one large file fan out across the workers.
func QueryFilesJobsOpt(queryText string, files []string, jobs int, opts Options) (*Resultset, error) {
	aq := obs.BeginQuery(queryText, "sharded")
	q, err := Parse(queryText)
	if err != nil {
		aq.End(err)
		return nil, err
	}
	reg := attr.NewRegistry()
	rows, err := query.RunShardedFilesOpts(q, reg, files, jobs, aq, opts.scan())
	if err != nil {
		aq.End(err)
		return nil, err
	}
	aq.SetRows(len(rows))
	aq.End(nil)
	return &Resultset{Rows: rows, Reg: reg, Query: q}, nil
}

// ParallelTiming re-exports the parallel query phase breakdown.
type ParallelTiming = pquery.Timing

// ParallelResult bundles a parallel query's resultset with its timing.
type ParallelResult struct {
	*Resultset
	Timing           ParallelTiming
	RecordsProcessed uint64
}

// QueryFilesParallel runs a query with the emulated-MPI parallel query
// application: ranks MPI processes are spawned, files are distributed
// round-robin (one subset per rank, as in the paper's weak-scaling setup),
// each rank aggregates its subset locally, and the partial aggregation
// databases are combined in a logarithmic tree reduction.
func QueryFilesParallel(queryText string, files []string, ranks int) (*ParallelResult, error) {
	return QueryFilesParallelOpt(queryText, files, ranks, Options{})
}

// QueryFilesParallelOpt is QueryFilesParallel with explicit execution
// options. Each rank scans its file subset through the index-aware scan
// layer, so sidecar indexes prune files and blocks per rank.
func QueryFilesParallelOpt(queryText string, files []string, ranks int, opts Options) (*ParallelResult, error) {
	if ranks <= 0 {
		ranks = len(files)
	}
	if ranks <= 0 {
		return nil, fmt.Errorf("calql: no input files")
	}
	aq := obs.BeginQuery(queryText, "mpi")
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		aq.End(err)
		return nil, err
	}
	filesFor := func(rank int) []string {
		// round-robin assignment: rank r reads files r, r+ranks, ...
		var fl []string
		for i := rank; i < len(files); i += ranks {
			fl = append(fl, files[i])
		}
		return fl
	}
	res, err := pquery.RunFilesObs(world, queryText, filesFor, 0, aq, opts.scan())
	if err != nil {
		aq.End(err)
		return nil, err
	}
	aq.Phase("local", res.Timing.LocalWall)
	if reduceWall := res.Timing.TotalWall - res.Timing.LocalWall; reduceWall > 0 {
		aq.Phase("reduce", reduceWall)
	}
	aq.SetRows(len(res.Rows))
	aq.End(nil)
	return &ParallelResult{
		Resultset:        &Resultset{Rows: res.Rows, Reg: res.Reg, Query: res.Query},
		Timing:           res.Timing,
		RecordsProcessed: res.RecordsProcessed,
	}, nil
}

// countingReader counts consumed bytes for the read span's bytes arg.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// ExplainFiles executes an EXPLAIN or EXPLAIN ANALYZE statement against
// the given .cali files and returns the rendered plan. With ranks > 0 the
// plan describes (and, for ANALYZE, measures) the parallel query
// application; otherwise the serial path. EXPLAIN resolves the plan
// without touching the inputs; EXPLAIN ANALYZE runs the wrapped query
// with span tracing scoped to the run and annotates each plan node with
// measured wall time, record counts, and byte counts.
func ExplainFiles(queryText string, files []string, ranks int) (string, error) {
	return ExplainFilesJobs(queryText, files, ranks, 1)
}

// ExplainFilesJobs is ExplainFiles with a sharded-execution worker count:
// with ranks == 0 and jobs != 1 the plan describes (and, for ANALYZE,
// measures) the sharded multi-core path with that many workers (jobs <= 0
// resolves to one worker per CPU, capped at the file count, matching
// QueryFilesJobs). Ranks take precedence: the emulated-MPI path has its
// own internal parallelism.
func ExplainFilesJobs(queryText string, files []string, ranks, jobs int) (string, error) {
	return ExplainFilesOpts(queryText, files, ranks, jobs, Options{})
}

// ExplainFilesOpts is ExplainFilesJobs with explicit execution options.
// The plan's index node reports the prunable conditions and decode
// projection (or that indexing is disabled); under ANALYZE it carries the
// measured block skip statistics.
func ExplainFilesOpts(queryText string, files []string, ranks, jobs int, eopts Options) (string, error) {
	q, err := Parse(queryText)
	if err != nil {
		return "", err
	}
	if q.Explain == ExplainNone {
		return "", fmt.Errorf("calql: not an EXPLAIN statement: %s", queryText)
	}
	if jobs <= 0 {
		jobs = query.DefaultJobs()
	}
	if jobs > len(files) {
		jobs = len(files)
	}
	opts := query.PlanOptions{Inputs: len(files), UseIndex: !eopts.NoIndex}
	if dir := eopts.cacheDir(); dir != "" {
		opts.Cache = true
		opts.CacheDir = dir
	}
	if ranks > 0 {
		opts.Ranks = ranks
		opts.Fanin = 2
	} else if jobs > 1 {
		opts.Jobs = jobs
	}
	plan, err := query.BuildPlan(q, opts)
	if err != nil {
		return "", err
	}
	if q.Explain == ExplainAnalyze {
		// scope span collection with Mark/Since rather than Reset, so a
		// concurrent collection (e.g. a -trace flag) keeps its spans
		prev := trace.SetEnabled(true)
		mark := trace.Mark()
		innerText := q.WithoutExplain().String()
		var runErr error
		switch {
		case ranks > 0:
			var res *ParallelResult
			res, runErr = QueryFilesParallelOpt(innerText, files, ranks, eopts)
			if runErr == nil {
				runErr = res.Render(io.Discard)
			}
		case jobs > 1:
			var res *Resultset
			res, runErr = QueryFilesJobsOpt(innerText, files, jobs, eopts)
			if runErr == nil {
				runErr = res.Render(io.Discard)
			}
		default:
			var res *Resultset
			res, runErr = QueryFilesOpt(innerText, files, eopts)
			if runErr == nil {
				runErr = res.Render(io.Discard)
			}
		}
		spans := trace.Since(mark)
		trace.SetEnabled(prev)
		if runErr != nil {
			return "", runErr
		}
		plan.Annotate(spans)
	}
	var sb stringsBuilder
	if err := plan.Write(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// QueryChannel flushes a live measurement channel and runs a query over
// the flushed records (on-line analytical aggregation). The channel's
// registry is shared, so result attributes resolve consistently.
func QueryChannel(queryText string, ch *caliper.Channel) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	eng, err := query.New(q, ch.Registry())
	if err != nil {
		return nil, err
	}
	if err := ch.FlushEmit(eng.Process); err != nil {
		return nil, err
	}
	rows, err := eng.Results()
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: ch.Registry(), Query: q}, nil
}

// QueryRecords runs a query over in-memory records resolved against reg.
func QueryRecords(queryText string, reg *attr.Registry, recs []snapshot.FlatRecord) (*Resultset, error) {
	q, err := Parse(queryText)
	if err != nil {
		return nil, err
	}
	rows, err := query.Run(q, reg, recs)
	if err != nil {
		return nil, err
	}
	return &Resultset{Rows: rows, Reg: reg, Query: q}, nil
}
