package calql

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/caliper"
)

// writeDataset runs a small instrumented workload and records its profile
// to a .cali file.
func writeDataset(t *testing.T, path string, rank int) {
	t.Helper()
	ch, err := caliper.NewChannel(caliper.Config{
		"services":          "event,timer,aggregate,recorder",
		"aggregate.key":     "kernel,mpi.rank",
		"aggregate.ops":     "count,sum(time.duration)",
		"recorder.filename": path,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.Set("mpi.rank", rank)
	for i := 0; i < 20; i++ {
		th.Begin("kernel", []string{"advec", "calc-dt"}[i%2])
		th.End("kernel")
	}
	if err := ch.FlushAndWrite(); err != nil {
		t.Fatal(err)
	}
}

func TestQueryFiles(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for r := 0; r < 3; r++ {
		p := filepath.Join(dir, "rank"+string(rune('0'+r))+".cali")
		writeDataset(t, p, r)
		files = append(files, p)
	}
	rs, err := QueryFiles("AGGREGATE sum(aggregate.count) GROUP BY kernel", files)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}
	for _, row := range rs.Rows {
		k, _ := row.GetByName("kernel")
		c, _ := row.GetByName("sum#aggregate.count")
		counts[k.String()] = c.AsInt()
	}
	// per file: 10 advec ends + 10 calc-dt ends attributed to the kernels
	if counts["advec"] != 30 || counts["calc-dt"] != 30 {
		t.Errorf("counts = %v, want advec=30 calc-dt=30", counts)
	}
}

func TestQueryFilesParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	var files []string
	for r := 0; r < 8; r++ {
		p := filepath.Join(dir, "r"+string(rune('0'+r))+".cali")
		writeDataset(t, p, r)
		files = append(files, p)
	}
	const q = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel"
	serial, err := QueryFiles(q, files)
	if err != nil {
		t.Fatal(err)
	}
	par, err := QueryFilesParallel(q, files, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(par.Rows) {
		t.Fatalf("rows: serial %d, parallel %d", len(serial.Rows), len(par.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i].String() != par.Rows[i].String() {
			t.Errorf("row %d differs:\n serial %s\n parallel %s",
				i, serial.Rows[i], par.Rows[i])
		}
	}
	if par.Timing.TotalVirt <= 0 {
		t.Error("parallel timing missing")
	}
}

func TestQueryFilesParallelDefaults(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "a.cali")
	writeDataset(t, p, 0)
	res, err := QueryFilesParallel("AGGREGATE count GROUP BY kernel", []string{p}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("no rows")
	}
	if _, err := QueryFilesParallel("AGGREGATE count", nil, 0); err == nil {
		t.Error("no files should error")
	}
}

func TestQueryChannel(t *testing.T) {
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"aggregate.key": "kernel",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	for i := 0; i < 6; i++ {
		th.Begin("kernel", "k")
		th.End("kernel")
	}
	rs, err := QueryChannel("SELECT kernel, aggregate.count AS count AGGREGATE count WHERE kernel GROUP BY kernel FORMAT csv", ch)
	if err != nil {
		t.Fatal(err)
	}
	out := rs.String()
	if !strings.Contains(out, "kernel,count") {
		t.Errorf("csv header missing:\n%s", out)
	}
	if !strings.Contains(out, "k,") {
		t.Errorf("kernel row missing:\n%s", out)
	}
}

func TestQueryFilesErrors(t *testing.T) {
	if _, err := QueryFiles("FROB", nil); err == nil {
		t.Error("bad query should error")
	}
	if _, err := QueryFiles("AGGREGATE count", []string{"/nonexistent/file.cali"}); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.cali")
	os.WriteFile(bad, []byte("__rec=ctx,ref=1\n"), 0o644)
	if _, err := QueryFiles("AGGREGATE count", []string{bad}); err == nil {
		t.Error("corrupt file should error")
	}
}

func TestResultsetWriteTable(t *testing.T) {
	ch, _ := caliper.NewChannel(caliper.Config{
		"services":      "event,aggregate",
		"aggregate.key": "kernel",
		"aggregate.ops": "count",
	})
	th := ch.Thread()
	th.Begin("kernel", "z")
	th.End("kernel")
	rs, err := QueryChannel("AGGREGATE count WHERE kernel GROUP BY kernel", ch)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rs.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "z") {
		t.Errorf("table output:\n%s", sb.String())
	}
}
