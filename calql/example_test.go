package calql_test

import (
	"fmt"
	"os"

	"caligo/caliper"
	"caligo/calql"
)

// Example runs a multi-stage workflow: on-line aggregation in the runtime,
// then an off-line analytical query over the flushed profile — the paper's
// combination of event aggregation and analytical aggregation.
func Example() {
	ch, err := caliper.NewChannel(caliper.Config{
		"services":      "event,timer,aggregate",
		"timer.source":  "virtual",
		"aggregate.key": "kernel,iteration",
		"aggregate.ops": "count,sum(time.duration)",
	})
	if err != nil {
		panic(err)
	}
	th := ch.Thread()
	for it := 0; it < 3; it++ {
		th.Set("iteration", it)
		for _, k := range []string{"assemble", "solve"} {
			th.Begin("kernel", k)
			cost := int64(100)
			if k == "solve" {
				cost = int64(200 * (it + 1)) // solve slows down over time
			}
			th.AdvanceVirtualTime(cost)
			th.End("kernel")
		}
	}

	// analytical aggregation: fold iterations away, add a percent column
	rs, err := calql.QueryChannel(`
		SELECT kernel, sum#sum#time.duration AS time,
		       percent_total#sum#time.duration AS share
		AGGREGATE sum(sum#time.duration), percent_total(sum#time.duration)
		WHERE kernel
		GROUP BY kernel
		ORDER BY time DESC`, ch)
	if err != nil {
		panic(err)
	}
	rs.Render(os.Stdout)
	// Output:
	// kernel   time share
	// solve    1200    80
	// assemble  300    20
}

// ExampleParse shows query validation and the canonical form.
func ExampleParse() {
	q, err := calql.Parse(
		"aggregate count, sum(time.duration) where not(mpi.function) group by kernel")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.String())
	// Output:
	// AGGREGATE count, sum(time.duration) WHERE not(mpi.function) GROUP BY kernel
}
