package calql

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"caligo/caliper"
	"caligo/internal/attr"
	"caligo/internal/calformat"
	"caligo/internal/contexttree"
	"caligo/internal/qcache"
	"caligo/internal/snapshot"
	"caligo/internal/telemetry"
)

// appendDataset appends a second recorder stream with n more begin/end
// pairs to an existing .cali file. Concatenated streams are valid .cali
// (metadata lines re-define attributes idempotently), which is exactly
// the shape a live capture ring or long-running job produces — the case
// the append-aware incremental scan exists for.
func appendDataset(t *testing.T, path string, rank, n int) {
	t.Helper()
	tail := path + ".tail"
	writeDatasetN(t, tail, rank, n)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(tail)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// cacheSmokeQueries is the correctness matrix: aggregations with and
// without WHERE / LET / ORDER BY / FORMAT, plus a non-aggregating
// selection (which must bypass the cache entirely).
var cacheSmokeQueries = []string{
	"AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel",
	"AGGREGATE count, sum(aggregate.count) GROUP BY kernel, mpi.rank",
	"AGGREGATE sum(aggregate.count) WHERE mpi.rank < 5 GROUP BY kernel",
	"AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY sum#aggregate.count DESC LIMIT 2",
	"SELECT kernel, sum#aggregate.count AS n AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY n FORMAT csv",
	"AGGREGATE min(sum#time.duration), max(sum#time.duration), avg(sum#time.duration) GROUP BY mpi.rank FORMAT json",
	"SELECT * WHERE kernel = advec",
}

// TestCacheSmoke is the end-to-end guarantee of the aggregate cache at
// the calql surface: over one shared cache directory, cold, warm,
// sharded, and emulated-MPI execution all render byte-identical output
// to an uncached run — the cache may only change how fast an answer
// arrives, never the answer.
func TestCacheSmoke(t *testing.T) {
	files := shardedFiles(t, 6)
	cacheDir := t.TempDir()
	for _, q := range cacheSmokeQueries {
		oracle, err := QueryFilesOpt(q, files, Options{NoCache: true})
		if err != nil {
			t.Fatalf("uncached %q: %v", q, err)
		}
		want := oracle.String()

		runs := []struct {
			mode string
			run  func() (fmt.Stringer, error)
		}{
			{"cold", func() (fmt.Stringer, error) { return QueryFilesOpt(q, files, Options{CacheDir: cacheDir}) }},
			{"warm", func() (fmt.Stringer, error) { return QueryFilesOpt(q, files, Options{CacheDir: cacheDir}) }},
			{"warm-sharded", func() (fmt.Stringer, error) {
				return QueryFilesJobsOpt(q, files, 3, Options{CacheDir: cacheDir})
			}},
		}
		for _, r := range runs {
			rs, err := r.run()
			if err != nil {
				t.Fatalf("%s %q: %v", r.mode, q, err)
			}
			if got := rs.String(); got != want {
				t.Errorf("%s %q output differs from uncached:\n--- uncached ---\n%s--- %s ---\n%s",
					r.mode, q, want, r.mode, got)
			}
		}

		// the MPI-parallel path interleaves selection rows by rank, so its
		// oracle is the same parallel run with the cache disabled
		parOracle, err := QueryFilesParallelOpt(q, files, 2, Options{NoCache: true})
		if err != nil {
			t.Fatalf("parallel uncached %q: %v", q, err)
		}
		par, err := QueryFilesParallelOpt(q, files, 2, Options{CacheDir: cacheDir})
		if err != nil {
			t.Fatalf("parallel cached %q: %v", q, err)
		}
		if got, pwant := par.String(), parOracle.String(); got != pwant {
			t.Errorf("warm-mpi %q differs from uncached parallel:\n--- uncached ---\n%s--- cached ---\n%s",
				q, pwant, got)
		}
	}

	// the store must hold state for the aggregating queries only
	store, err := qcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	infos, err := store.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) == 0 {
		t.Fatal("no cache entries stored after the smoke matrix")
	}
	for _, info := range infos {
		if info.Err != nil {
			t.Errorf("stored entry undecodable: %v", info.Err)
		}
	}
}

// TestCacheWarmHitCounters pins the cache classification: the second run
// of one query over one corpus must be all hits, skipping every byte.
func TestCacheWarmHitCounters(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	files := shardedFiles(t, 4)
	cacheDir := t.TempDir()
	const q = "AGGREGATE sum(aggregate.count) GROUP BY kernel"

	misses0 := qcache.TelMisses.Value()
	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	if got := qcache.TelMisses.Value() - misses0; got != uint64(len(files)) {
		t.Errorf("cold run misses = %d, want %d", got, len(files))
	}

	hits0, skipped0 := qcache.TelHits.Value(), qcache.TelBytesSkipped.Value()
	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	if got := qcache.TelHits.Value() - hits0; got != uint64(len(files)) {
		t.Errorf("warm run hits = %d, want %d", got, len(files))
	}
	var total uint64
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		total += uint64(st.Size())
	}
	if got := qcache.TelBytesSkipped.Value() - skipped0; got != total {
		t.Errorf("warm run skipped %d bytes, want the full corpus %d", got, total)
	}
}

// TestCacheAppendIncremental is the headline behavior: appending records
// to a cached file must re-aggregate only the tail — the cached prefix
// state is reused and the skipped byte count equals the pre-append size.
func TestCacheAppendIncremental(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	dir := t.TempDir()
	file := filepath.Join(dir, "ring.cali")
	writeDatasetN(t, file, 0, 60)
	files := []string{file}
	cacheDir := t.TempDir()
	const q = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel"

	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(file)
	if err != nil {
		t.Fatal(err)
	}
	watermark := uint64(st.Size())

	appendDataset(t, file, 0, 25)

	oracle, err := QueryFilesOpt(q, files, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	incr0, skipped0 := qcache.TelIncremental.Value(), qcache.TelBytesSkipped.Value()
	got, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != oracle.String() {
		t.Errorf("incremental output differs from full scan:\n--- full ---\n%s--- incremental ---\n%s",
			oracle.String(), got.String())
	}
	if n := qcache.TelIncremental.Value() - incr0; n != 1 {
		t.Errorf("incremental scans = %d, want 1", n)
	}
	if n := qcache.TelBytesSkipped.Value() - skipped0; n != watermark {
		t.Errorf("bytes skipped = %d, want the pre-append size %d", n, watermark)
	}

	// the entry was re-stored at the new watermark: one more run is a
	// clean hit, and appending again is again incremental
	hits0 := qcache.TelHits.Value()
	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	if n := qcache.TelHits.Value() - hits0; n != 1 {
		t.Errorf("post-append warm hits = %d, want 1", n)
	}
	appendDataset(t, file, 0, 10)
	oracle2, err := QueryFilesOpt(q, files, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	incr1 := qcache.TelIncremental.Value()
	got2, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got2.String() != oracle2.String() {
		t.Error("second incremental round diverged from full scan")
	}
	if n := qcache.TelIncremental.Value() - incr1; n != 1 {
		t.Errorf("second append: incremental scans = %d, want 1", n)
	}
}

// TestCacheIndexedFilesAgree: the cache and the sidecar block index
// coexist — with both enabled the output still matches a plain scan,
// and warm runs still hit.
func TestCacheIndexedFilesAgree(t *testing.T) {
	files := indexedFiles(t, 4)
	cacheDir := t.TempDir()
	for _, q := range []string{
		"AGGREGATE sum(aggregate.count) GROUP BY kernel",
		"AGGREGATE sum(aggregate.count) WHERE mpi.rank = 2 GROUP BY kernel",
	} {
		oracle, err := QueryFilesOpt(q, files, Options{NoCache: true, NoIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"cold", "warm"} {
			rs, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir})
			if err != nil {
				t.Fatal(err)
			}
			if rs.String() != oracle.String() {
				t.Errorf("%s %q with index+cache differs:\n--- plain ---\n%s--- cached ---\n%s",
					mode, q, oracle.String(), rs.String())
			}
		}
	}
}

// TestCacheFallback: a corrupted cache directory must never change an
// answer — every damaged entry falls back to a full scan silently.
func TestCacheFallback(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	files := shardedFiles(t, 3)
	cacheDir := t.TempDir()
	const q = "AGGREGATE sum(aggregate.count) GROUP BY kernel"

	oracle, err := QueryFilesOpt(q, files, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}

	// flip a byte in every stored entry
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for _, de := range ents {
		if filepath.Ext(de.Name()) != qcache.EntryExt {
			continue
		}
		p := filepath.Join(cacheDir, de.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("cold run stored no entries to damage")
	}

	fb0 := qcache.TelFallback.Value()
	got, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != oracle.String() {
		t.Errorf("corrupt cache changed the answer:\n--- oracle ---\n%s--- got ---\n%s",
			oracle.String(), got.String())
	}
	if n := qcache.TelFallback.Value() - fb0; n < uint64(damaged) {
		t.Errorf("fallbacks = %d, want >= %d", n, damaged)
	}

	// the full-scan run re-stored clean entries: next run hits again
	hits0 := qcache.TelHits.Value()
	if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	if n := qcache.TelHits.Value() - hits0; n != uint64(len(files)) {
		t.Errorf("post-repair hits = %d, want %d", n, len(files))
	}
}

// TestCacheTruncatedFileFallsBack: a file that SHRANK below the cached
// watermark (rewritten ring, truncated copy) must full-scan, not serve
// stale state.
func TestCacheTruncatedFileFallsBack(t *testing.T) {
	defer telemetry.SetEnabled(telemetry.SetEnabled(true))
	dir := t.TempDir()
	file := filepath.Join(dir, "shrink.cali")
	writeDatasetN(t, file, 1, 50)
	cacheDir := t.TempDir()
	const q = "AGGREGATE sum(aggregate.count) GROUP BY kernel"

	if _, err := QueryFilesOpt(q, []string{file}, Options{CacheDir: cacheDir}); err != nil {
		t.Fatal(err)
	}
	// rewrite the file smaller, with different content
	writeDatasetN(t, file, 1, 10)
	oracle, err := QueryFilesOpt(q, []string{file}, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	fb0 := qcache.TelFallback.Value()
	got, err := QueryFilesOpt(q, []string{file}, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != oracle.String() {
		t.Errorf("stale cache state served for a truncated file:\n--- oracle ---\n%s--- got ---\n%s",
			oracle.String(), got.String())
	}
	if qcache.TelFallback.Value() == fb0 {
		t.Error("truncated file did not count a fallback")
	}
}

// TestCacheNoCacheOverride: NoCache wins over CacheDir — nothing is
// stored or read.
func TestCacheNoCacheOverride(t *testing.T) {
	files := shardedFiles(t, 2)
	cacheDir := t.TempDir()
	if _, err := QueryFilesOpt("AGGREGATE count GROUP BY kernel", files,
		Options{CacheDir: cacheDir, NoCache: true}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range ents {
		if filepath.Ext(de.Name()) == qcache.EntryExt {
			t.Fatalf("NoCache run stored entry %s", de.Name())
		}
	}
}

// TestCacheSmokeExplain: with a cache directory configured, EXPLAIN
// shows the cache plan node (and where the state lives).
func TestCacheSmokeExplain(t *testing.T) {
	cacheDir := t.TempDir()
	out, err := ExplainFilesOpts(
		"EXPLAIN AGGREGATE sum(aggregate.count) GROUP BY kernel",
		[]string{"a.cali", "b.cali"}, 0, 1, Options{CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cache") || !strings.Contains(out, cacheDir) {
		t.Errorf("EXPLAIN missing the cache node:\n%s", out)
	}
	// without a cache directory the node is absent
	out, err = ExplainFilesOpts(
		"EXPLAIN AGGREGATE sum(aggregate.count) GROUP BY kernel",
		[]string{"a.cali", "b.cali"}, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "-> cache") {
		t.Errorf("EXPLAIN shows a cache node without a cache configured:\n%s", out)
	}
}

// BenchmarkCachedQuery measures the three cache temperatures over one
// corpus: cold (uncached full scan), warm (every file a state hit), and
// append (one file grows between runs, so its tail re-aggregates). The
// warm/cold ratio is the headline number — see ISSUE/BENCH_query.json.
func BenchmarkCachedQuery(b *testing.B) {
	dir := b.TempDir()
	var files []string
	for r := 0; r < 4; r++ {
		p := filepath.Join(dir, fmt.Sprintf("bench%02d.cali", r))
		writeDatasetBN(b, p, r, 3000)
		files = append(files, p)
	}
	const q = "AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel"

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(q, files, Options{NoCache: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cacheDir := b.TempDir()
		if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("append", func(b *testing.B) {
		cacheDir := b.TempDir()
		base, err := os.Stat(files[0])
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// restore the file to its base length, re-prime the cache at
			// that watermark, then append the tail — the timed query below
			// is always "one fresh append over a warm prefix"
			if err := os.Truncate(files[0], base.Size()); err != nil {
				b.Fatal(err)
			}
			if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
				b.Fatal(err)
			}
			appendDatasetB(b, files[0], 0, 20)
			b.StartTimer()
			if _, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// writeDatasetBN / appendDatasetB are the benchmark-friendly twins of
// the *testing.T helpers above.
func writeDatasetBN(b *testing.B, path string, rank, n int) {
	b.Helper()
	// keying on the per-pair iteration keeps every begin/end pair a
	// distinct record, so file size (and cold scan cost) scales with n
	// instead of collapsing to one row per kernel
	ch, err := caliper.NewChannel(caliper.Config{
		"services":          "event,timer,aggregate,recorder",
		"aggregate.key":     "kernel,mpi.rank,iteration",
		"aggregate.ops":     "count,sum(time.duration)",
		"recorder.filename": path,
	})
	if err != nil {
		b.Fatal(err)
	}
	th := ch.Thread()
	th.Set("mpi.rank", rank)
	kernels := []string{"advec", "calc-dt", "pdv", "flux"}
	for i := 0; i < n; i++ {
		th.Set("iteration", i)
		th.Begin("kernel", kernels[i%len(kernels)])
		th.End("kernel")
	}
	if err := ch.FlushAndWrite(); err != nil {
		b.Fatal(err)
	}
}

func appendDatasetB(b *testing.B, path string, rank, n int) {
	b.Helper()
	tail := path + ".tail"
	writeDatasetBN(b, tail, rank, n)
	data, err := os.ReadFile(tail)
	if err != nil {
		b.Fatal(err)
	}
	os.Remove(tail)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
}

// TestCacheWarmLargeSums guards the rendered type of cached results: a
// warm hit never opens the file, so the registry never sees the summed
// attribute and its type must arrive with the cached state through every
// merge. Losing it falls back to Float resolution, which renders large
// integer sums in scientific notation — byte-different from the uncached
// answer even though the values are numerically equal.
func TestCacheWarmLargeSums(t *testing.T) {
	dir := t.TempDir()
	reg := attr.NewRegistry()
	kernel := reg.MustCreate("kernel", attr.String, attr.Nested)
	dur := reg.MustCreate("time.duration", attr.Int, attr.AsValue|attr.Aggregatable)
	var files []string
	for fi := 0; fi < 2; fi++ {
		path := filepath.Join(dir, fmt.Sprintf("big%d.cali", fi))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := calformat.NewWriter(f, reg, contexttree.New())
		for i := 0; i < 50; i++ {
			rec := snapshot.FlatRecord{
				{Attr: kernel, Value: attr.StringV([]string{"advec", "pdv"}[i%2])},
				{Attr: dur, Value: attr.IntV(int64(3_000_000 + 17*i + fi))},
			}
			if err := w.WriteFlat(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}

	const q = "AGGREGATE sum(time.duration) GROUP BY kernel"
	oracle, err := QueryFilesOpt(q, files, Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.String()
	if strings.Contains(want, "e+") {
		t.Fatalf("uncached render unexpectedly scientific:\n%s", want)
	}
	cacheDir := t.TempDir()
	for _, mode := range []string{"cold", "warm"} {
		rs, err := QueryFilesOpt(q, files, Options{CacheDir: cacheDir})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := rs.String(); got != want {
			t.Errorf("%s output differs from uncached:\n--- uncached ---\n%s--- %s ---\n%s",
				mode, want, mode, got)
		}
	}
}
