package calql

import (
	"path/filepath"
	"testing"

	"caligo/internal/apps/paradis"
	"caligo/internal/calformat"
)

// BenchmarkIndexedScan measures what the sidecar block indexes buy at the
// calql surface over a 16-file ParaDiS-shaped dataset (2174 records per
// file):
//
//   - selective: WHERE mpi.rank = 3 touches one file in sixteen — the
//     index skips the other fifteen without opening them, so the indexed
//     run should be several times faster than the full scan.
//   - groupby: the paper's evaluation query has no prunable WHERE; every
//     block is decoded, measuring pure index overhead (must stay small).
//   - bigfile: all sixteen ranks merged into one multi-block file; block
//     spans let j=4 shard inside the single file. With one CPU the
//     speedup is scheduling-bound — the case documents correctness and
//     overhead, the multi-core win needs a multi-core host.
func BenchmarkIndexedScan(b *testing.B) {
	dir := b.TempDir()
	files, err := paradis.GenerateDirIndexed(dir, 16, paradis.DefaultConfig(), calformat.IndexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	const selective = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) WHERE mpi.rank = 3 GROUP BY kernel"

	b.Run("selective-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(selective, files, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("selective-fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(selective, files, Options{NoIndex: true}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("groupby-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(paradis.EvaluationQuery, files, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("groupby-fullscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesOpt(paradis.EvaluationQuery, files, Options{NoIndex: true}); err != nil {
				b.Fatal(err)
			}
		}
	})

	merged := filepath.Join(dir, "merged.cali")
	if _, err := paradis.WriteMerged(merged, 16, paradis.DefaultConfig(), true, calformat.IndexOptions{}); err != nil {
		b.Fatal(err)
	}
	one := []string{merged}
	b.Run("bigfile-j1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesJobsOpt(paradis.EvaluationQuery, one, 1, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bigfile-j4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFilesJobsOpt(paradis.EvaluationQuery, one, 4, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
