package calql

import (
	"strings"
	"testing"

	"caligo/internal/calformat"
)

// indexedFiles builds the uneven sharded corpus and a sidecar block index
// for every file, with deliberately small blocks so even these small test
// datasets span several blocks per file.
func indexedFiles(t *testing.T, nfiles int) []string {
	t.Helper()
	files := shardedFiles(t, nfiles)
	for _, f := range files {
		idx, err := calformat.BuildFileIndex(f, calformat.IndexOptions{BlockRecords: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := calformat.WriteIndexFile(f, idx); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

// TestIndexSmoke is the end-to-end guarantee of the index layer at the
// calql surface: over an indexed corpus, every execution mode with index
// pruning enabled renders byte-identical output to a full scan — including
// ORDER BY, LIMIT, SELECT *, and non-prunable WHERE clauses.
func TestIndexSmoke(t *testing.T) {
	files := indexedFiles(t, 6)
	queries := []string{
		"AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel",
		"AGGREGATE sum(aggregate.count) WHERE mpi.rank = 2 GROUP BY kernel",
		"AGGREGATE sum(aggregate.count) WHERE mpi.rank > 3 GROUP BY kernel, mpi.rank",
		"AGGREGATE count WHERE kernel = advec GROUP BY mpi.rank",
		"AGGREGATE sum(aggregate.count) WHERE not(kernel = advec) GROUP BY kernel",
		"AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY sum#aggregate.count DESC LIMIT 2",
		"SELECT kernel, sum#aggregate.count AS n AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY n FORMAT csv",
		"SELECT * WHERE kernel = pdv FORMAT json",
		"AGGREGATE sum(aggregate.count) WHERE mpi.rank = 99 GROUP BY kernel",
	}
	for _, q := range queries {
		full, err := QueryFilesOpt(q, files, Options{NoIndex: true})
		if err != nil {
			t.Fatalf("fullscan %q: %v", q, err)
		}
		want := full.String()

		indexed, err := QueryFilesOpt(q, files, Options{})
		if err != nil {
			t.Fatalf("indexed %q: %v", q, err)
		}
		if got := indexed.String(); got != want {
			t.Errorf("serial indexed %q differs from full scan:\n--- full ---\n%s--- indexed ---\n%s", q, want, got)
		}

		for _, jobs := range []int{3, 6} {
			sharded, err := QueryFilesJobsOpt(q, files, jobs, Options{})
			if err != nil {
				t.Fatalf("jobs=%d %q: %v", jobs, q, err)
			}
			if got := sharded.String(); got != want {
				t.Errorf("jobs=%d indexed %q differs from full scan:\n--- full ---\n%s--- indexed ---\n%s",
					jobs, q, want, got)
			}
		}

		// the MPI-parallel path interleaves selection rows by rank, so its
		// oracle is the same parallel run with the index disabled
		parFull, err := QueryFilesParallelOpt(q, files, 3, Options{NoIndex: true})
		if err != nil {
			t.Fatalf("parallel fullscan %q: %v", q, err)
		}
		par, err := QueryFilesParallelOpt(q, files, 3, Options{})
		if err != nil {
			t.Fatalf("parallel %q: %v", q, err)
		}
		if got, pwant := par.String(), parFull.String(); got != pwant {
			t.Errorf("parallel indexed %q differs from parallel full scan:\n--- full ---\n%s--- indexed ---\n%s",
				q, pwant, got)
		}
	}
}

// TestIndexSmokeExplain checks the surfaced plan: EXPLAIN shows the
// prunable conditions, EXPLAIN ANALYZE carries measured skip statistics,
// and NoIndex reports the index as disabled.
func TestIndexSmokeExplain(t *testing.T) {
	files := indexedFiles(t, 6)
	const q = "AGGREGATE sum(aggregate.count) WHERE mpi.rank = 2 GROUP BY kernel"

	out, err := ExplainFilesOpts("EXPLAIN "+q, files, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-> index", "prune blocks on mpi.rank = 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, out)
		}
	}

	out, err = ExplainFilesOpts("EXPLAIN ANALYZE "+q, files, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// rank=2 lives in exactly one of six files: five are skipped outright
	for _, want := range []string{"-> index", "files_skipped=5", "indexed=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE missing %q:\n%s", want, out)
		}
	}

	out, err = ExplainFilesOpts("EXPLAIN "+q, files, 0, 1, Options{NoIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "disabled (full scan)") {
		t.Errorf("EXPLAIN with NoIndex should report the index disabled:\n%s", out)
	}
}
