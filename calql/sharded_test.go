package calql

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"caligo/caliper"
)

// writeDatasetN writes one .cali dataset with n begin/end pairs, so test
// inputs can be deliberately uneven across shard workers.
func writeDatasetN(t *testing.T, path string, rank, n int) {
	t.Helper()
	ch, err := caliper.NewChannel(caliper.Config{
		"services":          "event,timer,aggregate,recorder",
		"aggregate.key":     "kernel,mpi.rank",
		"aggregate.ops":     "count,sum(time.duration)",
		"recorder.filename": path,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := ch.Thread()
	th.Set("mpi.rank", rank)
	kernels := []string{"advec", "calc-dt", "pdv", "flux"}
	for i := 0; i < n; i++ {
		th.Begin("kernel", kernels[i%len(kernels)])
		th.End("kernel")
	}
	if err := ch.FlushAndWrite(); err != nil {
		t.Fatal(err)
	}
}

// shardedFiles builds an uneven multi-file dataset: file r holds 10+7r
// records, so round-robin shards carry different loads.
func shardedFiles(t *testing.T, nfiles int) []string {
	t.Helper()
	dir := t.TempDir()
	var files []string
	for r := 0; r < nfiles; r++ {
		p := filepath.Join(dir, fmt.Sprintf("rank%02d.cali", r))
		writeDatasetN(t, p, r, 10+7*r)
		files = append(files, p)
	}
	return files
}

// TestQueryFilesJobsMatchesSerial is the golden guarantee of the sharded
// executor: for every worker count, the rendered output is byte-identical
// to serial execution — including ORDER BY, LIMIT, post-aggregation
// operators, and non-aggregating selection queries.
func TestQueryFilesJobsMatchesSerial(t *testing.T) {
	files := shardedFiles(t, 8)
	queries := []string{
		"AGGREGATE sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel",
		"AGGREGATE count, sum(aggregate.count) GROUP BY kernel, mpi.rank",
		"AGGREGATE sum(aggregate.count) GROUP BY kernel ORDER BY sum#aggregate.count DESC LIMIT 2",
		"SELECT kernel, sum#aggregate.count AS n AGGREGATE sum(aggregate.count), percent_total(aggregate.count) GROUP BY kernel ORDER BY n FORMAT csv",
		"AGGREGATE min(sum#time.duration), max(sum#time.duration), avg(sum#time.duration) GROUP BY mpi.rank FORMAT json",
		"SELECT * WHERE kernel = advec FORMAT json",
		"AGGREGATE sum(aggregate.count) WHERE mpi.rank < 5 GROUP BY kernel",
	}
	for _, q := range queries {
		serial, err := QueryFiles(q, files)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want := serial.String()
		for _, jobs := range []int{1, 3, 8} {
			rs, err := QueryFilesJobs(q, files, jobs)
			if err != nil {
				t.Fatalf("jobs=%d %q: %v", jobs, q, err)
			}
			if got := rs.String(); got != want {
				t.Errorf("jobs=%d %q output differs from serial:\n--- serial ---\n%s--- sharded ---\n%s",
					jobs, q, want, got)
			}
		}
	}
}

// TestQueryFilesJobsDefaults checks the jobs <= 0 resolution (one worker
// per CPU, capped at the file count) and the single-file edge.
func TestQueryFilesJobsDefaults(t *testing.T) {
	files := shardedFiles(t, 2)
	const q = "AGGREGATE sum(aggregate.count) GROUP BY kernel"
	rs, err := QueryFilesJobs(q, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := QueryFiles(q, files)
	if err != nil {
		t.Fatal(err)
	}
	if rs.String() != serial.String() {
		t.Error("default-jobs output differs from serial")
	}
	one, err := QueryFilesJobs("AGGREGATE count GROUP BY kernel", files[:1], 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Rows) == 0 {
		t.Error("single-file sharded query returned no rows")
	}
}

// TestQueryFilesJobsConcurrentMerge drives the widest merge tree the test
// datasets allow — 16 files, 16 workers → 4 reduction levels with up to 8
// concurrent pairwise merges — and checks the result against serial
// execution. Run under -race this covers the concurrent shard merge path.
func TestQueryFilesJobsConcurrentMerge(t *testing.T) {
	files := shardedFiles(t, 16)
	const q = "AGGREGATE count, sum(aggregate.count), sum(sum#time.duration) GROUP BY kernel, mpi.rank"
	serial, err := QueryFiles(q, files)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := QueryFilesJobs(q, files, 16)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != sharded.String() {
		t.Error("16-way sharded output differs from serial")
	}
}

// TestExplainFilesJobs checks that EXPLAIN resolves the sharded execution
// mode with shard and merge plan nodes, and that EXPLAIN ANALYZE
// attributes measured spans to them.
func TestExplainFilesJobs(t *testing.T) {
	files := shardedFiles(t, 4)
	out, err := ExplainFilesJobs(
		"EXPLAIN AGGREGATE sum(aggregate.count) GROUP BY kernel", files, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sharded (4 parallel workers", "-> shard", "-> merge"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}

	out, err = ExplainFilesJobs(
		"EXPLAIN ANALYZE AGGREGATE sum(aggregate.count) GROUP BY kernel", files, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sharded (4 parallel workers") {
		t.Errorf("EXPLAIN ANALYZE not sharded:\n%s", out)
	}
	// 4 workers → 4 shard spans; 3 pairwise merges
	if !strings.Contains(out, "spans=4") || !strings.Contains(out, "spans=3") {
		t.Errorf("EXPLAIN ANALYZE span counts missing (want spans=4 shard, spans=3 merge):\n%s", out)
	}
	// jobs == 1 keeps the serial plan shape
	out, err = ExplainFilesJobs(
		"EXPLAIN AGGREGATE count GROUP BY kernel", files, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "execution: serial") || strings.Contains(out, "-> shard") {
		t.Errorf("jobs=1 EXPLAIN should be serial:\n%s", out)
	}
}
