package calql

import (
	"fmt"
	"testing"

	"caligo/internal/apps/paradis"
)

// BenchmarkQueryFilesSharded measures end-to-end query latency over a
// 16-file ParaDiS-shaped dataset (paper-scale record mix: 2174 records per
// file, 85 groups): the serial path, then the sharded executor at
// increasing worker counts. On a multi-core machine j=4 should run close
// to 4x the serial throughput (workers are CPU-bound on decode+aggregate);
// with GOMAXPROCS=1 the sharded runs show the scheduling overhead instead,
// which must stay small.
func BenchmarkQueryFilesSharded(b *testing.B) {
	files, err := paradis.GenerateDir(b.TempDir(), 16, paradis.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const q = "AGGREGATE sum(sum#time.duration), sum(aggregate.count) GROUP BY kernel, mpi.function"

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := QueryFiles(q, files); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, jobs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := QueryFilesJobs(q, files, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
