package calql

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"caligo/internal/trace"
)

func explainDataset(t *testing.T, ranks int) []string {
	t.Helper()
	dir := t.TempDir()
	var files []string
	for r := 0; r < ranks; r++ {
		p := filepath.Join(dir, "rank"+string(rune('0'+r))+".cali")
		writeDataset(t, p, r)
		files = append(files, p)
	}
	return files
}

func TestExplainFilesPlanOnly(t *testing.T) {
	// EXPLAIN must not read the inputs: nonexistent files are fine
	out, err := ExplainFiles(
		"EXPLAIN AGGREGATE count, sum(time.duration) WHERE kernel=advec GROUP BY kernel FORMAT csv",
		[]string{"/nonexistent/a.cali", "/nonexistent/b.cali"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"EXPLAIN", "serial", "2 input files", "kernel=advec", "csv"} {
		if !strings.Contains(out, needle) {
			t.Errorf("plan missing %q:\n%s", needle, out)
		}
	}
	if strings.Contains(out, "spans=") {
		t.Errorf("EXPLAIN printed measurements:\n%s", out)
	}
}

func TestExplainFilesAnalyzeSerial(t *testing.T) {
	files := explainDataset(t, 3)
	out, err := ExplainFiles(
		"EXPLAIN ANALYZE AGGREGATE sum(aggregate.count) GROUP BY kernel", files, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"read", "aggregate", "reduce", "postprocess", "format"} {
		if !strings.Contains(out, "-> "+phase) {
			t.Errorf("analyzed plan missing phase %q:\n%s", phase, out)
		}
	}
	// the read node must report its span measurements and record count
	m := regexp.MustCompile(`-> read.*\n\s+spans=(\d+) time=\S+.*records=(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("read node not annotated:\n%s", out)
	}
	if m[1] == "0" || m[2] == "0" {
		t.Errorf("read node has empty measurements (spans=%s records=%s):\n%s", m[1], m[2], out)
	}
}

func TestExplainFilesAnalyzeParallel(t *testing.T) {
	files := explainDataset(t, 4)
	out, err := ExplainFiles(
		"EXPLAIN ANALYZE AGGREGATE sum(aggregate.count) GROUP BY kernel", files, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4 ranks") {
		t.Errorf("parallel plan missing rank count:\n%s", out)
	}
	m := regexp.MustCompile(`-> read\s+\S.*\n\s+spans=(\d+)`).FindStringSubmatch(out)
	if m == nil || m[1] != "4" {
		t.Errorf("parallel read node should sum 4 per-rank spans, got %v:\n%s", m, out)
	}
}

func TestExplainFilesErrors(t *testing.T) {
	if _, err := ExplainFiles("SELECT *", nil, 0); err == nil {
		t.Error("non-EXPLAIN statement accepted")
	}
	if _, err := ExplainFiles("EXPLAIN GROUP BY k", nil, 0); err == nil {
		t.Error("invalid inner query accepted")
	}
	if _, err := ExplainFiles(
		"EXPLAIN ANALYZE AGGREGATE count GROUP BY kernel",
		[]string{"/nonexistent/a.cali"}, 0); err == nil {
		t.Error("EXPLAIN ANALYZE over missing input should fail")
	}
}

func TestExplainFilesRestoresTracingState(t *testing.T) {
	files := explainDataset(t, 1)
	prev := trace.SetEnabled(false)
	t.Cleanup(func() { trace.SetEnabled(prev) })
	if _, err := ExplainFiles("EXPLAIN ANALYZE AGGREGATE count GROUP BY kernel", files, 0); err != nil {
		t.Fatal(err)
	}
	if trace.Enabled() {
		t.Error("EXPLAIN ANALYZE left span tracing enabled")
	}
}
